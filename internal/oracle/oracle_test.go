package oracle

import (
	"strings"
	"testing"

	"cachier/internal/interp"
	"cachier/internal/parc"
)

func mustParse(t *testing.T, src string) *parc.Program {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := parc.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// TestRunHandComputed pins the oracle against a program small enough to
// evaluate by hand: a partitioned init, a neighbour-reading second epoch, and
// a lock-protected reduction.
func TestRunHandComputed(t *testing.T) {
	src := `const N = 8;

shared int A[N] label "A";
shared int total label "total";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    for i = lo to lo + per - 1 {
        A[i] = i * 10;
    }
    barrier;
    for i = lo to lo + per - 1 {
        A[i] += A[(i + 1) % N] / 10;
    }
    barrier;
    lock(0);
    total += pid() + 1;
    unlock(0);
    print("done %d", pid());
}
`
	prog := mustParse(t, src)
	res, err := Run(prog, Config{Nprocs: 4, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: A[i] = 10i. Epoch 2 reads the NEW neighbour values (stable
	// from epoch 1): A[i] = 10i + ((i+1) mod 8 * 10)/10 = 10i + (i+1) mod 8.
	regA := res.Layout.Region("A")
	for i := 0; i < 8; i++ {
		addr, _ := regA.AddrOf(i)
		want := int64(10*i + (i+1)%8)
		got := interp.FromBits(res.Store.Load(addr), false).AsInt()
		if got != want {
			t.Errorf("A[%d] = %d, want %d", i, got, want)
		}
		if !res.Written[addr] {
			t.Errorf("A[%d] not marked written", i)
		}
	}
	regT := res.Layout.Region("total")
	addr, _ := regT.AddrOf()
	if got := interp.FromBits(res.Store.Load(addr), false).AsInt(); got != 1+2+3+4 {
		t.Errorf("total = %d, want 10", got)
	}
	if res.Barriers != 2 {
		t.Errorf("barriers = %d, want 2", res.Barriers)
	}
	if len(res.Output) != 4 {
		t.Fatalf("output lines = %d, want 4: %q", len(res.Output), res.Output)
	}
	for i, line := range res.Output {
		if !strings.HasPrefix(line, "node ") || !strings.Contains(line, "done") {
			t.Errorf("output[%d] = %q", i, line)
		}
	}
}

// TestRunDeterministic: two oracle runs of the same program are bit-identical.
func TestRunDeterministic(t *testing.T) {
	src := `const N = 16;

shared float B[N] label "B";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    for i = lo to lo + per - 1 {
        B[i] = rnd() + float(i) * 0.5;
    }
    barrier;
    for i = lo to lo + per - 1 {
        B[i] = B[i] * 2.0 + B[(i + 3) % N] * 0.0;
    }
}
`
	prog := mustParse(t, src)
	a, err := Run(prog, Config{Nprocs: 4, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prog, Config{Nprocs: 4, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	reg := a.Layout.Region("B")
	for i := 0; i < 16; i++ {
		addr, _ := reg.AddrOf(i)
		if a.Store.Load(addr) != b.Store.Load(addr) {
			t.Fatalf("B[%d] differs between runs", i)
		}
	}
}

// TestRunErrorUnwind: a runtime fault on one node mid-epoch aborts the run
// cleanly (no hung goroutines, checked under -race) and surfaces the error.
func TestRunErrorUnwind(t *testing.T) {
	src := `const N = 8;

shared int A[N] label "A";

func main() {
    barrier;
    if pid() == 2 {
        A[N + 100] = 1;
    }
    barrier;
}
`
	prog := mustParse(t, src)
	if _, err := Run(prog, Config{Nprocs: 4, BlockSize: 32}); err == nil {
		t.Fatal("expected out-of-bounds error, got nil")
	}
}

// TestRunDirectivesIgnored: CICO annotations must not change oracle memory.
func TestRunDirectivesIgnored(t *testing.T) {
	plain := `const N = 8;

shared int A[N] label "A";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    for i = lo to lo + per - 1 {
        A[i] = i + 7;
    }
    barrier;
}
`
	annotated := `const N = 8;

shared int A[N] label "A";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    check_out_x A[lo:lo + per - 1];
    for i = lo to lo + per - 1 {
        A[i] = i + 7;
    }
    check_in A[lo:lo + per - 1];
    barrier;
}
`
	pa, err := Run(mustParse(t, plain), Config{Nprocs: 4, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Run(mustParse(t, annotated), Config{Nprocs: 4, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	reg := pa.Layout.Region("A")
	for i := 0; i < 8; i++ {
		addr, _ := reg.AddrOf(i)
		if pa.Store.Load(addr) != pb.Store.Load(addr) {
			t.Fatalf("A[%d] differs with annotations", i)
		}
	}
}
