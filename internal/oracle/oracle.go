// Package oracle executes a ParC program on a sequential reference machine
// and reports the final shared memory, print output, and write footprint.
//
// The oracle is the ground truth for differential testing: it shares the
// interpreter and memory layout with the simulator but replaces the whole
// Dir1SW machine with the trivial one — every access hits the flat store
// directly, caches and directives do not exist, and scheduling is the
// simplest deterministic policy imaginable: processors run one at a time in
// node order, each to its next barrier (or completion), epoch by epoch.
// For a program that is element-level race-free within every epoch (at most
// one writer per shared element, cross-node reads only of data stable since
// an earlier epoch, multi-writer cells confined to lock-protected
// commutative integer updates), every schedule — including every simulator
// interleaving under any annotation placement — must produce exactly the
// memory this one does. Any divergence is a bug in the pipeline, not in the
// program.
package oracle

import (
	"errors"
	"fmt"

	"cachier/internal/interp"
	"cachier/internal/memory"
	"cachier/internal/parc"
)

// Config sizes the reference machine.
type Config struct {
	// Nprocs is the SPMD processor count (pid()/nprocs() values).
	Nprocs int
	// BlockSize must match the simulator's so memory.New assigns identical
	// region base addresses (layout aligns regions to blocks).
	BlockSize int
}

// Result is the reference execution's observable outcome.
type Result struct {
	Store  *interp.Store
	Layout *memory.Layout
	// Output holds print lines formatted exactly like the simulator's
	// ("node %d: text"), in oracle schedule order. Cross-machine comparisons
	// must treat output as a multiset: relative order between nodes is
	// schedule-dependent even for race-free programs.
	Output []string
	// Written marks every shared element address some node stored to.
	Written map[uint64]bool
	// Barriers counts completed global barrier episodes.
	Barriers int
}

// Run executes prog to completion on the reference machine.
func Run(prog *parc.Program, cfg Config) (*Result, error) {
	if cfg.Nprocs <= 0 {
		return nil, fmt.Errorf("oracle: need at least one processor")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 32
	}
	layout, err := memory.New(prog, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	m := &machine{
		store:   interp.NewStore(layout.TotalBytes()),
		written: make(map[uint64]bool),
	}
	for i := 0; i < cfg.Nprocs; i++ {
		m.procs = append(m.procs, &proc{
			resume: make(chan bool),
			parked: make(chan parkMsg),
		})
	}
	for i := 0; i < cfg.Nprocs; i++ {
		ctx := interp.NewContext(prog, m.store, m, i, cfg.Nprocs)
		go m.runProc(ctx, m.procs[i])
	}

	// Epoch loop: resume every still-active processor in node order; each
	// runs to its next barrier or to completion before the next one starts.
	active := make([]int, cfg.Nprocs)
	for i := range active {
		active[i] = i
	}
	barriers := 0
	for len(active) > 0 {
		var arrived []int
		for ai, id := range active {
			p := m.procs[id]
			p.resume <- true
			msg := <-p.parked
			if msg.err != nil {
				// Unwind the still-live goroutines: earlier procs that
				// arrived at the barrier this round, and later procs still
				// parked at the previous round's stop point. Procs that
				// already finished have exited and must not be signalled.
				for _, other := range arrived {
					m.procs[other].resume <- false
				}
				for _, other := range active[ai+1:] {
					m.procs[other].resume <- false
				}
				return nil, msg.err
			}
			if !msg.done {
				arrived = append(arrived, id)
			}
		}
		if len(arrived) > 0 {
			barriers++
		}
		active = arrived
	}

	return &Result{
		Store:    m.store,
		Layout:   layout,
		Output:   m.outputs,
		Written:  m.written,
		Barriers: barriers,
	}, nil
}

var errAborted = errors.New("oracle: aborted")

type parkMsg struct {
	done bool
	err  error
}

type proc struct {
	resume chan bool // coordinator -> proc; false aborts
	parked chan parkMsg
}

// machine implements interp.Machine with no memory system at all. Exactly
// one processor goroutine runs at any time (the coordinator resumes one and
// blocks until it parks), so the shared fields need no locking.
type machine struct {
	procs   []*proc
	store   *interp.Store
	written map[uint64]bool
	outputs []string
}

func (m *machine) runProc(ctx *interp.Context, p *proc) {
	if !<-p.resume {
		return
	}
	err := m.runInterp(ctx)
	if errors.Is(err, errAborted) {
		return
	}
	p.parked <- parkMsg{done: true, err: err}
}

func (m *machine) runInterp(ctx *interp.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, errAborted) {
				err = e
				return
			}
			panic(r)
		}
	}()
	return ctx.Run()
}

// Access implements interp.Machine: loads and stores hit the flat store
// directly (the interpreter performs the store itself; the machine only
// observes), so the oracle just records the write footprint.
func (m *machine) Access(node int, write bool, addr uint64, pc int) {
	if write {
		m.written[addr] = true
	}
}

// Directive implements interp.Machine. CICO annotations are performance
// directives with no memory semantics, so the reference machine ignores
// them; this is precisely what makes the oracle a fair referee for
// annotated and unannotated variants alike.
func (m *machine) Directive(node int, kind parc.AnnKind, ranges []interp.AddrRange, pc int) {}

// Barrier implements interp.Machine: park until the coordinator's next
// epoch round.
func (m *machine) Barrier(node int, pc int) {
	p := m.procs[node]
	p.parked <- parkMsg{}
	if !<-p.resume {
		panic(errAborted)
	}
}

// Lock and Unlock implement interp.Machine. Processors only yield at
// barriers, so a critical section always runs to completion before any
// other processor executes: mutual exclusion holds vacuously.
func (m *machine) Lock(node int, id int64, pc int)   {}
func (m *machine) Unlock(node int, id int64, pc int) {}

// Work implements interp.Machine; the oracle has no clock.
func (m *machine) Work(node int, cycles uint64) {}

// Print implements interp.Machine using the simulator's line format.
func (m *machine) Print(node int, text string) {
	m.outputs = append(m.outputs, fmt.Sprintf("node %d: %s", node, text))
}
