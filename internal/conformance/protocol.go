package conformance

import (
	"fmt"

	"cachier/internal/core"
	"cachier/internal/oracle"
	"cachier/internal/parc"
	"cachier/internal/parcgen"
	"cachier/internal/sim"
)

// ProtocolSpecs lists the coherence protocols the cross-protocol
// differential covers: the paper's Dir1SW, the degenerate single-pointer
// DirnNB (maximum overflow pressure), the sweep's Dir4NB, and Dir4B with
// its broadcast bit. Every spec must produce oracle-identical memory,
// output, and barrier counts on every corpus program — the protocols may
// only disagree about time.
func ProtocolSpecs() []string {
	return []string{"dir1sw", "dirnnb:1", "dirnnb:4", "dirnb:4"}
}

// RunProtocolEquivalence is the cross-protocol differential: the seed's
// program, plain and Cachier-annotated, runs under every ProtocolSpecs()
// entry with the per-access protocol probe enabled (pointer-count bounds
// for DirnNB, broadcast-bit consistency for DirnB, via Protocol.CheckEntry).
// Each run must match the sequential oracle (memory bit-for-bit, output as
// a multiset, barrier count), and across protocols the program-determined
// quantities — accesses, directives, barriers, final memory, output
// content — must be identical; only costs and coherence traffic may differ.
// The hardware protocols must additionally never trap.
func RunProtocolEquivalence(seed int64) error {
	src := parcgen.Generate(seed)
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("generated program invalid: %w", err)
	}
	want, err := oracle.Run(prog, oracle.Config{Nprocs: Nodes, BlockSize: blockSize})
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	ann, err := core.Annotate(src, traceRes.Trace, core.Options{Style: core.StylePerformance, Prefetch: true})
	if err != nil {
		return fmt.Errorf("annotate: %w", err)
	}
	annProg, err := parseChecked(ann.Source)
	if err != nil {
		return fmt.Errorf("annotated source invalid: %w\n%s", err, ann.Source)
	}
	sources := []struct {
		name string
		prog *parc.Program
	}{
		{"plain", prog},
		{"annotated", annProg},
	}
	for _, pv := range sources {
		var base *sim.Result
		var baseSpec string
		for _, spec := range ProtocolSpecs() {
			name := pv.name + "/" + spec
			cfg := simConfig(sim.ModePerf) // probe + self-check on
			cfg.Protocol = spec
			r, err := sim.Run(pv.prog, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if err := checkVariant(name, r, want); err != nil {
				return err
			}
			if spec != "dir1sw" && r.Stats.Traps != 0 {
				return fmt.Errorf("%s: %d traps — %s is all-hardware and must never trap",
					name, r.Stats.Traps, r.Protocol)
			}
			if base == nil {
				base, baseSpec = r, spec
				continue
			}
			if r.Barriers != base.Barriers {
				return fmt.Errorf("%s: %d barriers, %s saw %d", name, r.Barriers, baseSpec, base.Barriers)
			}
			if r.Stats.Reads != base.Stats.Reads || r.Stats.Writes != base.Stats.Writes {
				return fmt.Errorf("%s: %d reads / %d writes, %s issued %d / %d — protocols changed the access stream",
					name, r.Stats.Reads, r.Stats.Writes, baseSpec, base.Stats.Reads, base.Stats.Writes)
			}
			if r.Stats.CheckOutX != base.Stats.CheckOutX || r.Stats.CheckOutS != base.Stats.CheckOutS ||
				r.Stats.CheckIns != base.Stats.CheckIns ||
				r.Stats.PrefetchX != base.Stats.PrefetchX || r.Stats.PrefetchS != base.Stats.PrefetchS {
				return fmt.Errorf("%s: directive counts diverge from %s\n%s: %+v\n%s: %+v",
					name, baseSpec, spec, r.Stats, baseSpec, base.Stats)
			}
			if !equalUints(r.Store.Words(), base.Store.Words()) {
				return fmt.Errorf("%s: final shared memory diverges from %s", name, baseSpec)
			}
			if err := diffOutput(r.Output, base.Output); err != nil {
				return fmt.Errorf("%s vs %s: %w", name, baseSpec, err)
			}
		}
	}
	return nil
}

// RunParallelProtocol runs the seed's plain program under one protocol spec
// on both engines and diffs every observable surface — the parallel
// committer drives the same coherence.System regardless of protocol, and
// this check keeps that true as protocols are added.
func RunParallelProtocol(seed int64, spec string) error {
	return checkParallelSource("plain/"+spec, parcgen.Generate(seed), spec)
}

// RunLanesProtocol runs the seed's plain program under one protocol spec
// on the sequential and lane-batched engines and diffs every observable
// surface — the lane engine's batched access resolution leans on every
// protocol bumping the state generation (coherence batch.go), and this
// check keeps that true as protocols are added.
func RunLanesProtocol(seed int64, spec string) error {
	return checkLanesSource("plain/"+spec, parcgen.Generate(seed), spec)
}
