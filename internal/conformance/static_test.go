package conformance

import (
	"testing"

	"cachier/internal/bench"
	"cachier/internal/parcgen"
	"cachier/internal/sim"
	"cachier/internal/staticanno"
)

// TestStaticPlacementCorpus runs the trace-free placement differential over
// the full corpus: on every seed the statically inferred trace must drive
// core.Annotate to the byte-identical output the simulated trace does, in
// all three styles — or, where the generated program is genuinely
// data-dependent (an rnd()-driven guard), satisfy the footprint covering.
func TestStaticPlacementCorpus(t *testing.T) {
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunStaticPlacement(parcgen.Generate(seed)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestStaticPlacementExactness pins which corpus programs the inference
// widens on: seed 47's rnd()-derived guard is the only one. If generator or
// inference changes move this set, the assertion localizes it immediately.
func TestStaticPlacementExactness(t *testing.T) {
	inexact := map[int64]bool{47: true}
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			prog, err := parseChecked(parcgen.Generate(seed))
			if err != nil {
				t.Fatal(err)
			}
			inf, err := staticanno.Infer(prog, staticConfig(Nodes))
			if err != nil {
				t.Fatal(err)
			}
			if inf.Exact == inexact[seed] {
				t.Fatalf("seed %d: exact = %v, want %v (notes: %v)",
					seed, inf.Exact, !inexact[seed], inf.Notes)
			}
		})
	}
}

// TestStaticPlacementBench checks the five Figure 6 ports at their own
// machine geometry. Ocean is exact and byte-identical; MatrixMultiply
// races, but the replay reproduces the simulator's deterministic schedule,
// so it is exact and byte-identical too. Tomcatv widens yet still reaches
// the identical placement. Barnes and Mp3d widen on data-dependent control
// and their placements diverge — the documented divergence this test
// asserts — while the covering guarantee must hold for every port.
func TestStaticPlacementBench(t *testing.T) {
	want := map[string]struct {
		exact    bool
		matchAll bool // all three styles byte-identical
	}{
		"Barnes":         {exact: false, matchAll: false},
		"Ocean":          {exact: true, matchAll: true},
		"Mp3d":           {exact: false, matchAll: false},
		"MatrixMultiply": {exact: true, matchAll: true},
		"Tomcatv":        {exact: false, matchAll: true},
	}
	ports := bench.All()
	if len(ports) != len(want) {
		t.Fatalf("bench suite has %d ports, expectations cover %d", len(ports), len(want))
	}
	for _, b := range ports {
		b := b
		w, ok := want[b.Name]
		if !ok {
			t.Fatalf("no expectation for bench port %s", b.Name)
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source(b.Train)
			prog, err := parseChecked(src)
			if err != nil {
				t.Fatal(err)
			}
			mc := simConfig(sim.ModeTrace)
			mc.Nodes = b.Nodes
			// The per-barrier coherence self-check is the corpus suite's job;
			// at bench geometry it multiplies runtime without adding placement
			// coverage.
			mc.SelfCheck = false
			traceRes, err := sim.Run(prog, mc)
			if err != nil {
				t.Fatalf("trace run: %v", err)
			}
			cfg := staticConfig(b.Nodes)
			diffs, inf, err := staticanno.Compare(src, traceRes.Trace, cfg)
			if err != nil {
				t.Fatalf("static compare: %v", err)
			}
			if inf.Exact != w.exact {
				t.Errorf("exact = %v, want %v (notes: %v)", inf.Exact, w.exact, inf.Notes)
			}
			matched := 0
			for _, d := range diffs {
				if d.Match {
					matched++
				}
			}
			if got := matched == len(diffs); got != w.matchAll {
				var sample string
				for _, d := range diffs {
					if !d.Match {
						sample = d.Name + ":\n" + d.Diff
						break
					}
				}
				t.Errorf("%d/%d styles matched, want matchAll=%v\n%s",
					matched, len(diffs), w.matchAll, sample)
			}
			if err := StaticCoversResult(inf, traceRes.Trace); err != nil {
				t.Errorf("covering violated: %v", err)
			}
		})
	}
}
