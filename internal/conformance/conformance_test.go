package conformance

import (
	"testing"
)

// corpusSize is the deterministic corpus: seeds 0..corpusSize-1. Every seed
// runs the full differential pipeline (oracle + four simulated variants +
// per-access protocol probe + cost bounds), so tier-1 CI gets real
// adversarial coverage without any fuzz time.
const corpusSize = 200

// TestCorpus runs the full differential check over the fixed seed corpus.
func TestCorpus(t *testing.T) {
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunSeed(seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestAnnotatedEquivalenceCorpus runs the annotated-artifact check over a
// corpus slice (it overlaps RunSeed's work, so a smaller sample keeps the
// suite fast; the fuzz target extends it indefinitely).
func TestAnnotatedEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunAnnotatedEquivalence(seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestParallelEquivalenceCorpus runs the parallel-engine differential over
// the full corpus: every seed's program (and its annotated form) must be
// bit-identical — cycles, stats, memory, snapshot JSON, timeline JSON —
// between the sequential scheduler and the epoch-parallel engine.
func TestParallelEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunParallelEquivalence(seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestLanesEquivalenceCorpus runs the lane-engine differential over the
// full corpus: every seed's program (and its annotated form) must be
// bit-identical — cycles, stats, memory, snapshot JSON, timeline JSON —
// between the sequential scheduler and the lane-batched engine, and the
// candidate run must actually report the "lanes" engine.
func TestLanesEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunLanesEquivalence(seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestProtocolEquivalenceCorpus runs the cross-protocol differential over
// the full corpus: every seed's program, plain and annotated, under Dir1SW,
// Dir1NB, Dir4NB, and Dir4B with protocol-specific invariant probes on —
// all oracle-identical, differing only in time.
func TestProtocolEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < corpusSize; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunProtocolEquivalence(seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestProtocolParallelCorpus keeps the epoch-parallel engine bit-identical
// to the sequential scheduler under every non-default protocol (the default
// is TestParallelEquivalenceCorpus's full-corpus job).
func TestProtocolParallelCorpus(t *testing.T) {
	for _, spec := range []string{"dirnnb:4", "dirnb:4"} {
		spec := spec
		for seed := int64(0); seed < 50; seed++ {
			seed := seed
			t.Run(spec+"/"+seedName(seed), func(t *testing.T) {
				t.Parallel()
				if err := RunParallelProtocol(seed, spec); err != nil {
					t.Fatalf("seed %d under %s: %v", seed, spec, err)
				}
			})
		}
	}
}

// TestProtocolLanesCorpus keeps the lane-batched engine bit-identical to
// the sequential scheduler under every non-default protocol, including the
// degenerate one-pointer DirnNB (maximum directory churn, the hardest case
// for the batched-resolution generation counter). The default protocol is
// TestLanesEquivalenceCorpus's full-corpus job.
func TestProtocolLanesCorpus(t *testing.T) {
	for _, spec := range []string{"dirnnb:1", "dirnnb:4", "dirnb:4"} {
		spec := spec
		for seed := int64(0); seed < 50; seed++ {
			seed := seed
			t.Run(spec+"/"+seedName(seed), func(t *testing.T) {
				t.Parallel()
				if err := RunLanesProtocol(seed, spec); err != nil {
					t.Fatalf("seed %d under %s: %v", seed, spec, err)
				}
			})
		}
	}
}

func seedName(seed int64) string {
	const digits = "0123456789"
	if seed == 0 {
		return "seed0"
	}
	var buf [20]byte
	i := len(buf)
	for v := seed; v > 0; v /= 10 {
		i--
		buf[i] = digits[v%10]
	}
	return "seed" + string(buf[i:])
}

// FuzzPipeline extends TestCorpus to arbitrary seeds under `go test -fuzz`:
// the fuzzer explores the generator's seed space looking for a program any
// pipeline stage mishandles.
func FuzzPipeline(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzAnnotatedEquivalence fuzzes the annotated-artifact equivalence check.
func FuzzAnnotatedEquivalence(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunAnnotatedEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzParallelEquivalence fuzzes the sequential-vs-parallel engine
// differential over the generator's seed space.
func FuzzParallelEquivalence(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunParallelEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzLanesEquivalence fuzzes the sequential-vs-lanes engine differential
// over the generator's seed space.
func FuzzLanesEquivalence(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunLanesEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzProtocolEquivalence fuzzes the cross-protocol differential over the
// generator's seed space.
func FuzzProtocolEquivalence(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunProtocolEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	})
}
