package conformance

// Differential placement conformance for trace-free static annotation
// (internal/staticanno): on race-free, statically enumerable programs the
// synthetic trace must drive core.Annotate to the byte-identical output the
// simulated trace does, in every annotation style. Programs the inference
// over-approximates (or that genuinely race, where a simulated trace is one
// schedule's story) get the weaker covering guarantee instead: every miss
// the simulation recorded lies inside the static trace's footprint.

import (
	"fmt"

	"cachier/internal/sim"
	"cachier/internal/staticanno"
	"cachier/internal/trace"
)

// staticConfig mirrors the harness's simulated machine for the static
// pipeline.
func staticConfig(nodes int) staticanno.Config {
	mc := simConfig(sim.ModeTrace)
	return staticanno.Config{
		Nodes:     nodes,
		CacheSize: mc.CacheSize,
		Assoc:     mc.Assoc,
		BlockSize: blockSize,
	}
}

// RunStaticPlacement checks the tentpole equivalence on one source text at
// the harness geometry: simulate a trace, infer one statically, annotate
// from both in all three styles, and demand byte-identical outputs when
// the inference is exact. Programs with genuinely data-dependent control
// (an rnd()-driven guard, say) widen; for those only the footprint
// covering guarantee is checked, since byte equality is not promised.
func RunStaticPlacement(src string) error {
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("program invalid: %w", err)
	}
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	cfg := staticConfig(Nodes)
	diffs, inf, err := staticanno.Compare(src, traceRes.Trace, cfg)
	if err != nil {
		return fmt.Errorf("static compare: %w", err)
	}
	if !inf.Exact {
		return StaticCoversResult(inf, traceRes.Trace)
	}
	for _, d := range diffs {
		if !d.Match {
			return fmt.Errorf("%s placement diverges (-trace-driven, +static):\n%s", d.Name, d.Diff)
		}
	}
	return nil
}

// StaticPlacementAgainst diffs static placement against a given simulated
// trace on an arbitrary machine (the bench harness passes its own
// geometry). requireExact additionally rejects widened inference.
func StaticPlacementAgainst(src string, tr *trace.Trace, cfg staticanno.Config, requireExact bool) error {
	diffs, inf, err := staticanno.Compare(src, tr, cfg)
	if err != nil {
		return fmt.Errorf("static compare: %w", err)
	}
	if requireExact && !inf.Exact {
		return fmt.Errorf("static inference widened on an enumerable program: %v", inf.Notes)
	}
	for _, d := range diffs {
		if !d.Match {
			return fmt.Errorf("%s placement diverges (-trace-driven, +static):\n%s", d.Name, d.Diff)
		}
	}
	return nil
}

// StaticCovers is the weaker guarantee for programs static inference cannot
// pin exactly: every block a node missed on in the simulation must appear
// in the static trace's footprint for that node — the over-approximation
// may add blocks but never drop one a real execution touched. Blocks (not
// element addresses) are compared because a widened access can shift which
// element of a block is touched first, and they are compared per node over
// the whole run because a widened loop may merge epochs.
func StaticCovers(src string, tr *trace.Trace, cfg staticanno.Config) error {
	prog, err := parseChecked(src)
	if err != nil {
		return err
	}
	inf, err := staticanno.Infer(prog, cfg)
	if err != nil {
		return err
	}
	return StaticCoversResult(inf, tr)
}

// StaticCoversResult is StaticCovers against an inference the caller has
// already run (callers that just ran Compare need not infer twice).
func StaticCoversResult(inf *staticanno.Result, tr *trace.Trace) error {
	bs := uint64(inf.Trace.BlockSize)
	static := make(map[int]map[uint64]bool)
	for _, e := range inf.Trace.Epochs {
		for _, m := range e.Misses {
			if static[m.Node] == nil {
				static[m.Node] = make(map[uint64]bool)
			}
			static[m.Node][m.Addr/bs] = true
		}
	}
	var missing int
	var first string
	for _, e := range tr.Epochs {
		for _, m := range e.Misses {
			if !static[m.Node][m.Addr/bs] {
				if missing == 0 {
					first = fmt.Sprintf("node %d addr %#x pc %d (%s)", m.Node, m.Addr, m.PC, m.Kind)
				}
				missing++
			}
		}
	}
	if missing > 0 {
		return fmt.Errorf("static footprint drops %d simulated miss block(s); first: %s", missing, first)
	}
	return nil
}
