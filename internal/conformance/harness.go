// Package conformance is the differential backbone demanded by the paper's
// central claim: CICO annotations are semantics-preserving performance
// directives (Sections 3-5). For each generated ParC program the harness
// runs the complete pipeline — trace, Cachier placement in every style,
// simulation of every variant — and checks all of it against the sequential
// oracle:
//
//  1. Final shared memory of every variant (unannotated, Performance CICO,
//     Performance+prefetch, Programmer CICO) is bit-identical to the
//     oracle's, and print output matches as a multiset.
//  2. Dir1SW never violates its coherence invariants, checked per access by
//     the dir1sw probe rather than only at barriers.
//  3. The CICO cost equations bound the measured protocol counts: a
//     program that writes W distinct blocks must check out at least W
//     blocks exclusively, the annotation sets stay inside the trace's
//     read/write footprints, and the cost report obeys the model's own
//     arithmetic.
//
// The same entry points back the deterministic 200-seed corpus test and the
// native fuzz targets.
package conformance

import (
	"bytes"
	"fmt"
	"sort"

	"cachier/internal/cico"
	"cachier/internal/core"
	"cachier/internal/dir1sw"
	"cachier/internal/obs"
	"cachier/internal/oracle"
	"cachier/internal/parc"
	"cachier/internal/parcgen"
	"cachier/internal/sim"
	"cachier/internal/testutil"
	"cachier/internal/vet"
)

// Nodes is the simulated machine size used for generated programs; it must
// match parcgen.DefaultConfig().Nodes so partitions divide evenly.
const Nodes = 4

const blockSize = 32

// simConfig returns the harness's machine: small, probed, self-checking.
func simConfig(mode sim.Mode) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Nodes = Nodes
	cfg.BlockSize = blockSize
	cfg.Mode = mode
	cfg.SelfCheck = true
	cfg.Probe = true
	return cfg
}

// RunSeed generates the seed's program and runs the full differential check.
func RunSeed(seed int64) error {
	return RunSource(parcgen.Generate(seed))
}

// RunSource runs the differential check on one ParC source text.
func RunSource(src string) error {
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("generated program invalid: %w", err)
	}

	// Static checks: the generator partitions all shared writes by node
	// (disjoint slices or common locks), so the race detector must find
	// nothing at all — any finding here is a vet false positive.
	if rep := vet.Analyze(prog, vet.Options{Nprocs: Nodes}); len(rep.Findings) != 0 {
		return fmt.Errorf("vet reported findings on a generated program:\n%s", rep)
	}

	// Printer round trip: the printed form must re-parse to the same AST.
	printed := parc.Print(prog)
	reparsed, err := parseChecked(printed)
	if err != nil {
		return fmt.Errorf("printed program does not re-parse: %w\n%s", err, printed)
	}
	if err := parc.ASTEqual(prog, reparsed); err != nil {
		return fmt.Errorf("print/re-parse changed the AST: %w", err)
	}

	// Ground truth.
	want, err := oracle.Run(prog, oracle.Config{Nprocs: Nodes, BlockSize: blockSize})
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}

	// Trace the unannotated program (ModeTrace also executes it fully, so it
	// is the first simulator variant to survive the memory check).
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	if err := checkVariant("trace-mode", traceRes, want); err != nil {
		return err
	}

	// The Section 4.1 equations must hold on this real trace, in both
	// styles, exactly as they do on testutil's synthetic ones.
	epochs := core.ProcessTrace(traceRes.Trace)
	conflicts := core.FindAllConflicts(epochs, traceRes.Trace.BlockSize)
	for _, style := range []core.Style{core.StyleProgrammer, core.StylePerformance} {
		ann := core.ComputeAnnotations(epochs, conflicts, style)
		if err := testutil.CheckAnnotationSets(epochs, ann, style); err != nil {
			return fmt.Errorf("annotation sets: %w", err)
		}
	}

	// Unannotated perf run.
	plainRes, err := sim.Run(prog, simConfig(sim.ModePerf))
	if err != nil {
		return fmt.Errorf("unannotated run: %w", err)
	}
	if err := checkVariant("unannotated", plainRes, want); err != nil {
		return err
	}
	if err := checkCheckoutBound("unannotated", plainRes.Stats, want); err != nil {
		return err
	}

	// Tree-walker differential: the bytecode VM is the engine behind every
	// run above, so those only prove the VM against the oracle. Re-running
	// the program through the tree-walking reference implementation and
	// demanding a bit-identical machine — same cycle count, same protocol
	// stats — pins the VM to the reference access-for-access, not just
	// result-for-result.
	treeCfg := simConfig(sim.ModePerf)
	treeCfg.TreeWalk = true
	treeRes, err := sim.Run(prog, treeCfg)
	if err != nil {
		return fmt.Errorf("tree-walk run: %w", err)
	}
	if err := checkVariant("tree-walk", treeRes, want); err != nil {
		return err
	}
	if treeRes.Cycles != plainRes.Cycles {
		return fmt.Errorf("tree-walk differential: VM ran %d cycles, tree-walker %d",
			plainRes.Cycles, treeRes.Cycles)
	}
	if treeRes.Stats != plainRes.Stats {
		return fmt.Errorf("tree-walk differential: protocol stats diverge\nVM:   %+v\ntree: %+v",
			plainRes.Stats, treeRes.Stats)
	}

	// Observability differential: the recorder only observes, so attaching
	// one (timeline included) must leave the simulation bit-identical —
	// same cycles, same protocol stats. The snapshot must be internally
	// consistent (per-epoch sums vs protocol totals), deterministic across
	// two identical runs, and the timeline must satisfy the trace-event
	// schema invariants.
	if err := checkObservability(prog, plainRes); err != nil {
		return err
	}

	// Cachier placement in all three styles, each simulated from its
	// printed source so the annotated text round-trips through the real
	// parser exactly as a user's file would.
	variants := []struct {
		name string
		opts core.Options
	}{
		{"performance", core.Options{Style: core.StylePerformance}},
		{"performance+prefetch", core.Options{Style: core.StylePerformance, Prefetch: true}},
		{"programmer", core.Options{Style: core.StyleProgrammer}},
	}
	for _, v := range variants {
		res, err := core.Annotate(src, traceRes.Trace, v.opts)
		if err != nil {
			return fmt.Errorf("%s annotate: %w", v.name, err)
		}
		if err := checkCostReport(v.name, res.Cost, epochs); err != nil {
			return err
		}
		annProg, err := parseChecked(res.Source)
		if err != nil {
			return fmt.Errorf("%s: annotated source invalid: %w\n%s", v.name, err, res.Source)
		}
		// Cachier's inserted annotations must satisfy the CICO protocol
		// lint (and must not, of course, have introduced races).
		annVet := vet.Analyze(annProg, vet.Options{Nprocs: Nodes})
		if races := annVet.Races(); len(races) != 0 {
			return fmt.Errorf("%s: annotated program has races:\n%s\n%s", v.name, annVet, res.Source)
		}
		if lintErrs := annVet.LintErrors(); len(lintErrs) != 0 {
			return fmt.Errorf("%s: annotated program fails the CICO lint:\n%s\n%s", v.name, annVet, res.Source)
		}
		annRes, err := sim.Run(annProg, simConfig(sim.ModePerf))
		if err != nil {
			return fmt.Errorf("%s run: %w\n%s", v.name, err, res.Source)
		}
		if err := checkVariant(v.name, annRes, want); err != nil {
			return fmt.Errorf("%w\n%s", err, res.Source)
		}
		if err := checkCheckoutBound(v.name, annRes.Stats, want); err != nil {
			return err
		}
	}

	// Eviction stress: a cache far smaller than the data forces constant
	// replacement traffic through the same invariants.
	tiny := simConfig(sim.ModePerf)
	tiny.CacheSize = 256
	tiny.Assoc = 2
	tinyRes, err := sim.Run(prog, tiny)
	if err != nil {
		return fmt.Errorf("tiny-cache run: %w", err)
	}
	return checkVariant("tiny-cache", tinyRes, want)
}

// RunAnnotatedEquivalence is the FuzzAnnotatedEquivalence core: it focuses
// on the annotated artifact itself. The annotated source must parse, its
// sequential meaning must be identical to the plain program's (the oracle
// ignores directives, so any divergence means the rewriter changed real
// semantics — a clobbered variable, a broken loop), and it must still match
// the oracle when simulated with prefetches disabled, the paper's
// with/without-prefetch comparison on the same source.
func RunAnnotatedEquivalence(seed int64) error {
	src := parcgen.Generate(seed)
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("generated program invalid: %w", err)
	}
	want, err := oracle.Run(prog, oracle.Config{Nprocs: Nodes, BlockSize: blockSize})
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	res, err := core.Annotate(src, traceRes.Trace, core.Options{Style: core.StylePerformance, Prefetch: true})
	if err != nil {
		return fmt.Errorf("annotate: %w", err)
	}
	annProg, err := parseChecked(res.Source)
	if err != nil {
		return fmt.Errorf("annotated source invalid: %w\n%s", err, res.Source)
	}
	annOracle, err := oracle.Run(annProg, oracle.Config{Nprocs: Nodes, BlockSize: blockSize})
	if err != nil {
		return fmt.Errorf("oracle on annotated source: %w\n%s", err, res.Source)
	}
	if err := testutil.DiffSharedMemory(annOracle.Layout, annOracle.Store, want.Store); err != nil {
		return fmt.Errorf("annotation changed sequential semantics: %w\n%s", err, res.Source)
	}
	cfg := simConfig(sim.ModePerf)
	cfg.DisablePrefetch = true
	annRes, err := sim.Run(annProg, cfg)
	if err != nil {
		return fmt.Errorf("no-prefetch run: %w\n%s", err, res.Source)
	}
	return checkVariant("no-prefetch", annRes, want)
}

// RunParallelEquivalence is the parallel-engine differential: the
// epoch-parallel engine must be observationally indistinguishable from the
// sequential scheduler — not statistically close, bit-identical. It runs the
// generated program, and its Performance+prefetch annotated form (annotation
// directives travel the parallel engine's cold event path), on both engines
// with full observability attached, demanding identical cycles, per-node
// clocks, protocol stats, shared memory, output, snapshot JSON, and timeline
// JSON. Generated programs are race-free by construction, so a conflict
// fallback is legal but the fallback result must still match exactly.
func RunParallelEquivalence(seed int64) error {
	src := parcgen.Generate(seed)
	if err := checkParallelSource("plain", src, ""); err != nil {
		return err
	}
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("generated program invalid: %w", err)
	}
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	res, err := core.Annotate(src, traceRes.Trace, core.Options{Style: core.StylePerformance, Prefetch: true})
	if err != nil {
		return fmt.Errorf("annotate: %w", err)
	}
	return checkParallelSource("annotated", res.Source, "")
}

// RunLanesEquivalence is the lane-engine differential: the lane-batched
// engine (sim.Config.Lanes — resumable lane stepper, epoch-bucketed
// barrier releases, batched access resolution) must be bit-identical to
// the sequential scheduler on every observable surface. Like the parallel
// differential it runs the generated program plain and in its
// Performance+prefetch annotated form (directives exercise the generation
// bumps that guard the access memo).
func RunLanesEquivalence(seed int64) error {
	src := parcgen.Generate(seed)
	if err := checkLanesSource("plain", src, ""); err != nil {
		return err
	}
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("generated program invalid: %w", err)
	}
	traceRes, err := sim.Run(prog, simConfig(sim.ModeTrace))
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	res, err := core.Annotate(src, traceRes.Trace, core.Options{Style: core.StylePerformance, Prefetch: true})
	if err != nil {
		return fmt.Errorf("annotate: %w", err)
	}
	return checkLanesSource("annotated", res.Source, "")
}

// checkParallelSource runs one source text on the sequential and
// epoch-parallel engines, under the given coherence protocol spec ("" is
// Dir1SW), and diffs every observable surface. Generated programs are
// race-free by construction, so a conflict fallback is legal, but the
// fallback result must still match exactly.
func checkParallelSource(name, src, protocol string) error {
	return checkEngineSource(name, src, protocol, func(cfg *sim.Config) {
		cfg.Parallel = sim.ParallelAuto
	}, "")
}

// checkLanesSource is the same differential against the lane-batched
// engine. Generated programs always compile, so a silent fallback to the
// sequential engine would make the check vacuous — the candidate result
// must come from the "lanes" engine.
func checkLanesSource(name, src, protocol string) error {
	return checkEngineSource(name, src, protocol, func(cfg *sim.Config) {
		cfg.Lanes = true
	}, "lanes")
}

// checkEngineSource runs one source text on the sequential engine and on a
// candidate engine (selected by configure), under the given coherence
// protocol spec ("" is Dir1SW), and diffs every observable surface. A
// non-empty wantEngine additionally pins which engine must have produced
// the candidate result.
func checkEngineSource(name, src, protocol string, configure func(*sim.Config), wantEngine string) error {
	prog, err := parseChecked(src)
	if err != nil {
		return fmt.Errorf("%s: source invalid: %w\n%s", name, err, src)
	}
	run := func(configure func(*sim.Config)) (*sim.Result, *obs.Recorder, error) {
		cfg := simConfig(sim.ModePerf)
		cfg.Protocol = protocol
		cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		cfg.Recorder.EnableTimeline()
		if configure != nil {
			configure(&cfg)
		}
		res, err := sim.Run(prog, cfg)
		return res, cfg.Recorder, err
	}
	seq, seqRec, seqErr := run(nil)
	par, parRec, parErr := run(configure)
	if (seqErr == nil) != (parErr == nil) {
		return fmt.Errorf("%s: error divergence: sequential %v, candidate %v", name, seqErr, parErr)
	}
	if seqErr != nil {
		if seqErr.Error() != parErr.Error() {
			return fmt.Errorf("%s: error text divergence:\nsequential: %v\ncandidate:  %v", name, seqErr, parErr)
		}
		return nil
	}
	if wantEngine != "" && par.Engine != wantEngine {
		return fmt.Errorf("%s: candidate ran on engine %q, want %q", name, par.Engine, wantEngine)
	}
	if seq.Cycles != par.Cycles {
		return fmt.Errorf("%s: cycles diverge: sequential %d, parallel %d (%s)", name, seq.Cycles, par.Cycles, par.Engine)
	}
	if !equalUints(seq.NodeCycles, par.NodeCycles) {
		return fmt.Errorf("%s: node cycles diverge (%s)", name, par.Engine)
	}
	if seq.Stats != par.Stats {
		return fmt.Errorf("%s: protocol stats diverge (%s)\nsequential: %+v\nparallel:   %+v", name, par.Engine, seq.Stats, par.Stats)
	}
	if !equalUints(seq.Store.Words(), par.Store.Words()) {
		return fmt.Errorf("%s: shared memory diverges (%s)", name, par.Engine)
	}
	if err := diffOutput(par.Output, seq.Output); err != nil {
		return fmt.Errorf("%s (%s): %w", name, par.Engine, err)
	}
	for i := range seq.Output {
		if seq.Output[i] != par.Output[i] {
			return fmt.Errorf("%s: output order diverges at line %d (%s): %q vs %q",
				name, i, par.Engine, seq.Output[i], par.Output[i])
		}
	}
	seqSnap, err := seq.Snapshot.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("%s: marshal sequential snapshot: %w", name, err)
	}
	parSnap, err := par.Snapshot.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("%s: marshal parallel snapshot: %w", name, err)
	}
	if !bytes.Equal(seqSnap, parSnap) {
		return fmt.Errorf("%s: snapshots diverge (%s)", name, par.Engine)
	}
	var seqTL, parTL bytes.Buffer
	if err := seqRec.Timeline("conformance").WriteJSON(&seqTL); err != nil {
		return fmt.Errorf("%s: sequential timeline: %w", name, err)
	}
	if err := parRec.Timeline("conformance").WriteJSON(&parTL); err != nil {
		return fmt.Errorf("%s: parallel timeline: %w", name, err)
	}
	if !bytes.Equal(seqTL.Bytes(), parTL.Bytes()) {
		return fmt.Errorf("%s: timelines diverge (%s)", name, par.Engine)
	}
	return nil
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkObservability re-runs prog with a recorder (and timeline) attached
// and checks it against the plain run; see the call site for the contract.
func checkObservability(prog *parc.Program, plain *sim.Result) error {
	run := func() (*sim.Result, *obs.Recorder, error) {
		cfg := simConfig(sim.ModePerf)
		cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		cfg.Recorder.EnableTimeline()
		res, err := sim.Run(prog, cfg)
		return res, cfg.Recorder, err
	}
	res, rec, err := run()
	if err != nil {
		return fmt.Errorf("recorded run: %w", err)
	}
	if res.Cycles != plain.Cycles {
		return fmt.Errorf("observability differential: recorder changed cycles: %d with, %d without",
			res.Cycles, plain.Cycles)
	}
	if res.Stats != plain.Stats {
		return fmt.Errorf("observability differential: recorder changed protocol stats\nwithout: %+v\nwith:    %+v",
			plain.Stats, res.Stats)
	}
	if res.Snapshot == nil {
		return fmt.Errorf("observability differential: recorded run produced no snapshot")
	}
	if err := res.Snapshot.CheckConsistency(); err != nil {
		return fmt.Errorf("observability differential: %w", err)
	}
	tl := rec.Timeline("conformance")
	if tl == nil {
		return fmt.Errorf("observability differential: no timeline despite EnableTimeline")
	}
	if err := tl.Validate(); err != nil {
		return fmt.Errorf("observability differential: invalid timeline: %w", err)
	}
	data, err := res.Snapshot.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("observability differential: marshal snapshot: %w", err)
	}
	res2, _, err := run()
	if err != nil {
		return fmt.Errorf("second recorded run: %w", err)
	}
	data2, err := res2.Snapshot.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("observability differential: marshal second snapshot: %w", err)
	}
	if !bytes.Equal(data, data2) {
		return fmt.Errorf("observability differential: snapshots of identical runs differ")
	}
	return nil
}

func parseChecked(src string) (*parc.Program, error) {
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := parc.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// checkVariant compares one simulation against the oracle: shared memory
// bit-for-bit, print output as a multiset, and barrier count.
func checkVariant(name string, got *sim.Result, want *oracle.Result) error {
	if err := testutil.DiffSharedMemory(got.Layout, got.Store, want.Store); err != nil {
		return fmt.Errorf("%s: memory diverges from oracle: %w", name, err)
	}
	if err := diffOutput(got.Output, want.Output); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if got.Barriers != want.Barriers {
		return fmt.Errorf("%s: %d barriers, oracle saw %d", name, got.Barriers, want.Barriers)
	}
	return nil
}

// diffOutput compares print output as a sorted multiset: inter-node order is
// schedule-dependent even for race-free programs, content is not.
func diffOutput(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("printed %d lines, oracle printed %d", len(got), len(want))
	}
	g := append([]string(nil), got...)
	w := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("output line %q not matched by oracle's %q", g[i], w[i])
		}
	}
	return nil
}

// checkCheckoutBound asserts the CICO model's floor on measured protocol
// counts: every block the program writes must be acquired exclusively at
// least once — by write miss, write fault, explicit check_out_x, or
// prefetch_x — so the distinct written-block count bounds the sum from
// below (cost model Section 2: "a processor must check out a block to write
// it").
func checkCheckoutBound(name string, st dir1sw.Stats, want *oracle.Result) error {
	written := cico.BlocksTouched(want.Written, blockSize)
	acq := st.WriteMisses + st.WriteFaults + st.CheckOutX + st.PrefetchX
	if acq < written {
		return fmt.Errorf("%s: wrote %d distinct blocks but acquired only %d exclusively", name, written, acq)
	}
	// Conservation: every access is exactly one of hit, read miss, write
	// miss, or write fault.
	if st.Hits+st.ReadMisses+st.WriteMisses+st.WriteFaults != st.Reads+st.Writes {
		return fmt.Errorf("%s: access outcomes (%d) do not sum to accesses (%d)",
			name, st.Hits+st.ReadMisses+st.WriteMisses+st.WriteFaults, st.Reads+st.Writes)
	}
	return nil
}

// checkCostReport asserts the cost report against the trace it was computed
// from: annotated blocks never exceed the per-node epoch footprints they
// must be subsets of, and the model cost is exactly the model's arithmetic.
func checkCostReport(name string, rep *core.CostReport, epochs []*core.EpochSets) error {
	if rep == nil {
		return fmt.Errorf("%s: no cost report", name)
	}
	var swBlocks, srBlocks, sBlocks uint64
	for _, es := range epochs {
		for _, ns := range es.Nodes {
			swBlocks += cico.BlocksTouched(ns.SW, blockSize)
			srBlocks += cico.BlocksTouched(ns.SR, blockSize)
			sBlocks += cico.BlocksTouched(ns.S(), blockSize)
		}
	}
	if rep.TotalCoX > swBlocks {
		return fmt.Errorf("%s: co_x %d blocks exceeds trace write footprint %d", name, rep.TotalCoX, swBlocks)
	}
	if rep.TotalCoS > srBlocks {
		return fmt.Errorf("%s: co_s %d blocks exceeds trace read footprint %d", name, rep.TotalCoS, srBlocks)
	}
	if rep.TotalCI > sBlocks {
		return fmt.Errorf("%s: ci %d blocks exceeds trace footprint %d", name, rep.TotalCI, sBlocks)
	}
	if wantCost := cico.DefaultCosts().ProgramCost(rep.TotalCoX+rep.TotalCoS, rep.TotalCI); rep.ModelCost != wantCost {
		return fmt.Errorf("%s: model cost %d, model arithmetic says %d", name, rep.ModelCost, wantCost)
	}
	return nil
}
