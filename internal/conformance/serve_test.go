package conformance

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"cachier/internal/parcgen"
	"cachier/internal/serve"
)

// TestServeEquivalenceCorpus is the serving layer's conformance check: for
// a corpus slice, every HTTP response from one shared server must be
// byte-identical to the in-process library result (serve.Eval* through
// serve.MarshalResponse) — cold and cached. The server's caches,
// singleflight, and worker pool therefore cannot change a single response
// byte; cmd/cachierload extends this to the full corpus against a live
// daemon.
func TestServeEquivalenceCorpus(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.DefaultConfig()).Handler())
	// t.Cleanup (not defer): it runs only after every parallel subtest has
	// finished with the shared server.
	t.Cleanup(srv.Close)

	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			src := parcgen.Generate(seed)
			machine := serve.MachineSpec{Nodes: 4}

			vetReq := &serve.VetRequest{Source: src, Nodes: 4}
			wantVet, err := serve.EvalVet(vetReq)
			if err != nil {
				t.Fatalf("EvalVet: %v", err)
			}
			annReq := &serve.AnnotateRequest{Source: src, Prefetch: true, Machine: machine}
			wantAnn, err := serve.EvalAnnotate(annReq)
			if err != nil {
				t.Fatalf("EvalAnnotate: %v", err)
			}
			simReq := &serve.SimulateRequest{Source: src, Configs: []serve.MachineSpec{{Nodes: 4}}}
			wantSim, _, err := serve.EvalSimulate(simReq)
			if err != nil {
				t.Fatalf("EvalSimulate: %v", err)
			}

			for _, c := range []struct {
				endpoint string
				req      any
				want     any
			}{
				{"vet", vetReq, wantVet},
				{"annotate", annReq, wantAnn},
				{"simulate", simReq, wantSim},
			} {
				wantBytes, err := serve.MarshalResponse(c.want)
				if err != nil {
					t.Fatal(err)
				}
				// Cold request, then an immediate repeat: both must match
				// the library bytes exactly.
				for pass := 0; pass < 2; pass++ {
					body, err := json.Marshal(c.req)
					if err != nil {
						t.Fatal(err)
					}
					resp, err := http.Post(srv.URL+"/v1/"+c.endpoint, "application/json", bytes.NewReader(body))
					if err != nil {
						t.Fatal(err)
					}
					got, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Fatal(err)
					}
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("%s pass %d: status %d: %s", c.endpoint, pass, resp.StatusCode, got)
					}
					if !bytes.Equal(got, wantBytes) {
						t.Fatalf("%s pass %d: HTTP response diverges from library result\n--- http ---\n%s\n--- library ---\n%s",
							c.endpoint, pass, got, wantBytes)
					}
				}
			}
		})
	}
}
