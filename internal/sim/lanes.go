package sim

import (
	"fmt"

	"cachier/internal/coherence"
	"cachier/internal/interp"
	"cachier/internal/parc"
)

// The lane-batched engine (Config.Lanes) is an SPMD reorganization of the
// sequential engine's hot path. The sequential engine gives every simulated
// processor its own goroutine and parks all but one; a context switch is a
// channel handoff, which on a small host is a large fraction of the whole
// simulation. Here all P processors are *lanes* of one goroutine: each has
// a resumable interpreter (interp.LaneVM) whose frames live in per-function
// SoA banks (the vmFrame pools), and a context switch just retargets which
// lane Resume steps next — no parking, no channels, no runtime scheduler.
//
// Two structures keep the scheduler itself lane-shaped:
//
//   - mask is the execution mask: the set of lanes that are runnable
//     (not parked at a barrier or lock, not done). It is maintained at
//     every park/unpark seam and lets tests — and the deadlock report —
//     see the engine's state as a vector predicate rather than a heap walk.
//
//   - bucket is the epoch bucket for barrier releases, the irregularity
//     split: a barrier release makes every waiter runnable *at the same
//     clock*, so instead of P-1 heap pushes the released lanes enter one
//     NodeSet tagged with the shared release clock, and the scheduler pops
//     them in processor-ID order — exactly the (clock, pid) order the heap
//     would have produced, without the churn. Only the irregular minority
//     (lock wakeups, quantum overruns) still goes through the (clock, pid)
//     heap.
//
// The memory side batches too: the coherence layer's access memo
// (coherence batch.go, enabled here) resolves same-block access runs with
// one lookup per block instead of one cache-and-directory walk per access.
//
// Scheduling decisions are bit-identical to the sequential engine's —
// min-(clock, pid) across heap and bucket, same quantum limit — so every
// simulated result (cycles, per-node cycles, stats, memory image, output
// order, Snapshot, timeline) is bit-identical. The conformance corpus
// diffs the two engines end to end.
type laneEngine struct {
	m    *Machine
	cur  *proc // the running lane
	vms  []*interp.LaneVM
	ctxs []*interp.Context

	mask coherence.NodeSet // execution mask: runnable lanes

	// Epoch bucket: lanes released by the last barrier, all runnable at
	// bucketClock, popped in processor-ID order. Empty between barriers.
	bucket      coherence.NodeSet
	bucketClock uint64
	bucketLen   int

	halt bool
}

// LaneRunning implements interp.LaneYielder: a lane keeps executing only
// while it is the engine's current lane.
func (e *laneEngine) LaneRunning(node int) bool {
	return !e.halt && e.cur.id == node
}

// runLanes drives the lane-batched engine. ok reports whether the engine
// could run the program at all; on !ok the caller falls back to the
// sequential engine (the stepper refuses tree-walk contexts and programs
// with uncompiled functions).
func runLanes(prog *parc.Program, cfg Config) (*Result, error, bool) {
	m, ctxs, err := newMachine(prog, cfg)
	if err != nil {
		return nil, err, true
	}
	eng := &laneEngine{
		m:      m,
		ctxs:   ctxs,
		vms:    make([]*interp.LaneVM, cfg.Nodes),
		mask:   coherence.NewNodeSet(cfg.Nodes),
		bucket: coherence.NewNodeSet(cfg.Nodes),
	}
	for i, ctx := range ctxs {
		lv, ok := ctx.NewLaneVM(eng)
		if !ok {
			return nil, nil, false
		}
		eng.vms[i] = lv
		eng.mask.Add(i)
	}
	m.lanes = eng
	m.sys.EnableAccessMemo()

	// Identical scheduler bootstrap to the sequential engine: processor 0
	// runs, everyone else is parked runnable at clock 0.
	for i := 1; i < cfg.Nodes; i++ {
		m.ready.push(m.procs[i])
	}
	m.refreshLimit()
	eng.cur = m.procs[0]

	for !eng.halt {
		p := eng.cur
		if eng.vms[p.id].Resume() == interp.LaneDone && p.status != statusDone {
			pr, pw := eng.ctxs[p.id].PrivateAccesses()
			m.finishProc(p, eng.vms[p.id].Err(), pr, pw)
		}
	}

	res, err := m.buildResult(ctxs)
	if res != nil {
		res.Engine = engineLanes
	}
	return res, err, true
}

// laneSwitch is the lane engine's yieldSwitch: pick the runnable lane with
// the smallest (clock, processor ID) across the heap and the epoch bucket
// and make it current. Identical decisions to the sequential heap-only
// scheduler, since bucketed lanes would have sat in the heap at exactly
// (bucketClock, id).
func (e *laneEngine) laneSwitch(p *proc) {
	m := e.m
	if m.ready.len() == 0 && e.bucketLen == 0 {
		// Nothing else is runnable and the caller cannot continue: the
		// program completed, or every remaining lane is masked out
		// (deadlock).
		// Same diagnostic text as the sequential scheduler: the error is an
		// observable surface the equivalence suites diff.
		if m.done < len(m.procs) && m.runErr == nil {
			m.runErr = fmt.Errorf("sim: deadlock: %d of %d nodes blocked (barrier waiters: %d)",
				len(m.procs)-m.done, len(m.procs), m.waiting)
		}
		e.halt = true
		return
	}
	m.rec.Handoff()
	useBucket := e.bucketLen > 0
	if useBucket && m.ready.len() > 0 {
		if hm := m.ready.min(); hm.clock < e.bucketClock ||
			(hm.clock == e.bucketClock && hm.id < e.bucket.First()) {
			useBucket = false
		}
	}
	if useBucket {
		id := e.bucket.First()
		e.bucket.Remove(id)
		e.bucketLen--
		if p.status == statusReady {
			m.ready.push(p)
		}
		m.refreshLimit()
		e.cur = m.procs[id]
		return
	}
	q := m.ready.min()
	if p.status == statusReady {
		// The caller stays runnable: take the popped minimum's slot
		// directly, same as the sequential engine's common handoff.
		m.ready.replaceMin(p)
	} else {
		m.ready.pop()
	}
	m.refreshLimit()
	e.cur = q
}

// kill retires a lane the machine faulted from inside one of its own calls
// (an unlock of a lock the node does not hold): the stepper is marked done
// so it never dispatches again, and the processor goes through the same
// finishProc path the sequential engine's panic unwind reaches, with its
// interpreter's live private-access counters.
func (e *laneEngine) kill(node int) {
	e.vms[node].Kill()
	pr, pw := e.ctxs[node].PrivateAccesses()
	e.m.finishProc(e.m.procs[node], errProcFault, pr, pw)
}
