package sim

import (
	"strings"
	"testing"

	"cachier/internal/parc"
)

const protoTestSrc = `
shared int out[4];
func main() {
    out[pid()] = pid() + 10;
    barrier;
    if pid() == 0 {
        for i = 0 to 3 {
            out[i] = out[i] * 2;
        }
    }
}
`

// TestProtocolSelection runs the same program under every protocol spec:
// results (memory, barriers) agree, the display name is reported, and the
// hardware protocols never trap.
func TestProtocolSelection(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"", "Dir1SW"},
		{"dir1sw", "Dir1SW"},
		{"dirnnb:1", "Dir1NB"},
		{"dirnnb", "Dir4NB"},
		{"dirnb:2", "Dir2B"},
	}
	var base *Result
	for _, c := range cases {
		cfg := cfg4()
		cfg.Protocol = c.spec
		res := runSrc(t, protoTestSrc, cfg)
		if res.Protocol != c.name {
			t.Errorf("spec %q: protocol %q, want %q", c.spec, res.Protocol, c.name)
		}
		if c.spec != "" && c.spec != "dir1sw" && res.Stats.Traps != 0 {
			t.Errorf("spec %q: %d traps, hardware protocols never trap", c.spec, res.Stats.Traps)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Barriers != base.Barriers {
			t.Errorf("spec %q: %d barriers, want %d", c.spec, res.Barriers, base.Barriers)
		}
		for i := 0; i < 4; i++ {
			if got, want := load(t, res, "out", i), load(t, base, "out", i); got != want {
				t.Errorf("spec %q: out[%d] = %v, want %v", c.spec, i, got, want)
			}
		}
	}
}

// TestFullMapAblationStillSelectsDir1SWFamily pins the FullMap switch to the
// explicit-spec path: "" and "dir1sw" both honour it.
func TestFullMapAblationStillSelectsDir1SWFamily(t *testing.T) {
	for _, spec := range []string{"", "dir1sw"} {
		cfg := cfg4()
		cfg.Protocol = spec
		cfg.FullMap = true
		res := runSrc(t, protoTestSrc, cfg)
		if res.Protocol != "FullMap" {
			t.Errorf("spec %q + FullMap: protocol %q", spec, res.Protocol)
		}
	}
}

// TestProtocolConfigRejections: unknown specs, and the Dir1SW-only switches
// combined with hardware protocols, fail up front rather than mis-simulate.
func TestProtocolConfigRejections(t *testing.T) {
	prog, err := parc.Parse(protoTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mutate func(*Config)
		substr string
	}{
		{func(c *Config) { c.Protocol = "mesi" }, "unknown"},
		{func(c *Config) { c.Protocol = "dirnnb:0" }, "pointer"},
		{func(c *Config) { c.Protocol = "dirnnb:4"; c.FullMap = true }, "FullMap"},
		{func(c *Config) { c.Protocol = "dirnb:4"; c.PostStore = true }, "PostStore"},
	}
	for _, c := range cases {
		cfg := cfg4()
		c.mutate(&cfg)
		if _, err := Run(prog, cfg); err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("protocol %q fullmap=%v poststore=%v: err = %v, want mention of %q",
				cfg.Protocol, cfg.FullMap, cfg.PostStore, err, c.substr)
		}
	}
}
