package sim

import (
	"bytes"
	"reflect"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
)

// runEngine runs src on the given engine configuration with a recorder and
// timeline attached, returning the result and the recorder.
func runEngine(t *testing.T, src string, parallel int, mutate func(*Config)) (*Result, *obs.Recorder, error) {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.Parallel = parallel
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	cfg.Recorder.EnableTimeline()
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(prog, cfg)
	return res, cfg.Recorder, err
}

// checkEquivalent asserts the parallel run of src is bit-identical to the
// sequential run: cycles, per-node clocks, protocol stats, output, sharing
// counters, snapshot JSON, and timeline JSON.
func checkEquivalent(t *testing.T, src string, mutate func(*Config)) {
	t.Helper()
	seq, seqRec, seqErr := runEngine(t, src, 0, mutate)
	par, parRec, parErr := runEngine(t, src, 4, mutate)

	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error divergence: sequential %v, parallel %v", seqErr, parErr)
	}
	if seqErr != nil {
		if seqErr.Error() != parErr.Error() {
			t.Fatalf("error text divergence:\nsequential: %v\nparallel:   %v", seqErr, parErr)
		}
		return
	}
	if seq.Engine != engineSequential {
		t.Fatalf("sequential run reported engine %q", seq.Engine)
	}
	if par.Engine != engineParallel && par.Engine != engineSeqFallback {
		t.Fatalf("parallel run reported engine %q", par.Engine)
	}
	if seq.Cycles != par.Cycles {
		t.Errorf("cycles: sequential %d, parallel %d", seq.Cycles, par.Cycles)
	}
	if !reflect.DeepEqual(seq.NodeCycles, par.NodeCycles) {
		t.Errorf("node cycles diverge:\nsequential: %v\nparallel:   %v", seq.NodeCycles, par.NodeCycles)
	}
	if seq.Stats != par.Stats {
		t.Errorf("stats diverge:\nsequential: %+v\nparallel:   %+v", seq.Stats, par.Stats)
	}
	if !reflect.DeepEqual(seq.Output, par.Output) {
		t.Errorf("output diverges:\nsequential: %q\nparallel:   %q", seq.Output, par.Output)
	}
	if seq.Barriers != par.Barriers {
		t.Errorf("barriers: sequential %d, parallel %d", seq.Barriers, par.Barriers)
	}
	if !reflect.DeepEqual(seq.SharedReads, par.SharedReads) || !reflect.DeepEqual(seq.SharedWrites, par.SharedWrites) {
		t.Errorf("sharing counters diverge")
	}
	sl, ss := seq.SharingDegree()
	pl, ps := par.SharingDegree()
	if sl != pl || ss != ps {
		t.Errorf("sharing degree diverges: sequential (%g, %g), parallel (%g, %g)", sl, ss, pl, ps)
	}
	if !reflect.DeepEqual(seq.Store.Words(), par.Store.Words()) {
		words := seq.Store.Words()
		pwords := par.Store.Words()
		for i := range words {
			if words[i] != pwords[i] {
				t.Errorf("shared memory diverges at word %d: sequential %#x, parallel %#x", i, words[i], pwords[i])
				break
			}
		}
	}
	seqSnap, err := seq.Snapshot.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal sequential snapshot: %v", err)
	}
	parSnap, err := par.Snapshot.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal parallel snapshot: %v", err)
	}
	if !bytes.Equal(seqSnap, parSnap) {
		t.Errorf("snapshots diverge:\nsequential:\n%s\nparallel:\n%s", seqSnap, parSnap)
	}
	var seqTL, parTL bytes.Buffer
	if err := seqRec.Timeline("t").WriteJSON(&seqTL); err != nil {
		t.Fatalf("sequential timeline: %v", err)
	}
	if err := parRec.Timeline("t").WriteJSON(&parTL); err != nil {
		t.Fatalf("parallel timeline: %v", err)
	}
	if !bytes.Equal(seqTL.Bytes(), parTL.Bytes()) {
		t.Errorf("timelines diverge")
	}
}

func TestParallelEquivalenceBarrierProgram(t *testing.T) {
	checkEquivalent(t, `
shared float a[32][32];
shared float b[32][32];
shared float c[32][32];
func main() {
    for i = pid() to 31 step nprocs() {
        for j = 0 to 31 {
            a[i][j] = i + j;
            b[i][j] = i - j;
        }
    }
    barrier;
    for i = pid() to 31 step nprocs() {
        for j = 0 to 31 {
            var acc float = 0.0;
            for k = 0 to 31 {
                acc += a[i][k] * b[k][j];
            }
            c[i][j] = acc;
        }
    }
    barrier;
    if (pid() == 0) {
        print("trace", c[1][1]);
    }
}
`, nil)
}

func TestParallelEquivalenceLocks(t *testing.T) {
	checkEquivalent(t, `
shared int sum[1];
shared int hist[64];
func main() {
    for i = pid() to 63 step nprocs() {
        hist[i] = i * i;
    }
    barrier;
    var local int = 0;
    for i = pid() to 63 step nprocs() {
        local += hist[i];
    }
    lock(1);
    sum[0] += local;
    unlock(1);
    barrier;
    if (pid() == 0) {
        print("sum", sum[0]);
    }
}
`, nil)
}

// A lock held across a barrier: the engine drops to speculative mode at the
// barrier and the later unlock is a plain batched event.
func TestParallelEquivalenceLockAcrossBarrier(t *testing.T) {
	checkEquivalent(t, `
shared int v[8];
func main() {
    if (pid() == 0) {
        lock(7);
        v[0] = 41;
    }
    barrier;
    v[pid()] = v[0] + pid();
    if (pid() == 0) {
        unlock(7);
    }
    barrier;
}
`, nil)
}

// A cross-node read/write race with no ordering: the speculative read is
// stale, the value check must catch it, and the fall-back sequential re-run
// must produce exactly the sequential results.
func TestParallelConflictFallback(t *testing.T) {
	src := `
shared int flag[8];
func main() {
    var r int = 0;
    for i = 0 to 4000 {
        r = r + i;
    }
    flag[pid()] = r + pid();
    if (pid() > 0) {
        r = flag[pid() - 1];
    }
    flag[pid()] = r;
    barrier;
}
`
	seq, _, seqErr := runEngine(t, src, 0, nil)
	par, _, parErr := runEngine(t, src, 4, nil)
	if seqErr != nil || parErr != nil {
		t.Fatalf("runs failed: sequential %v, parallel %v", seqErr, parErr)
	}
	if par.Engine != engineSeqFallback {
		t.Fatalf("racy program should fall back, engine = %q", par.Engine)
	}
	if seq.Cycles != par.Cycles || seq.Stats != par.Stats {
		t.Fatalf("fallback run diverges from sequential")
	}
	if !reflect.DeepEqual(seq.Store.Words(), par.Store.Words()) {
		t.Fatalf("fallback memory diverges from sequential")
	}
	seqSnap, _ := seq.Snapshot.MarshalIndentJSON()
	parSnap, _ := par.Snapshot.MarshalIndentJSON()
	if !bytes.Equal(seqSnap, parSnap) {
		t.Fatalf("fallback snapshot diverges (Recorder.Reset leak?):\nsequential:\n%s\nparallel:\n%s", seqSnap, parSnap)
	}
}

// Unlocking a lock the node does not hold is a machine fault that kills the
// processor on both engines; the run error must match exactly.
func TestParallelEquivalenceUnlockFault(t *testing.T) {
	checkEquivalent(t, `
shared int v[8];
func main() {
    v[pid()] = pid();
    if (pid() == 3) {
        unlock(9);
    }
    v[pid()] = v[pid()] + 1;
}
`, nil)
}

// A processor exiting while holding a lock the others want: deadlock, with
// an identical diagnostic from both engines.
func TestParallelEquivalenceDeadlock(t *testing.T) {
	checkEquivalent(t, `
func main() {
    if (pid() == 0) {
        lock(1);
    }
    if (pid() != 0) {
        lock(1);
        unlock(1);
    }
}
`, nil)
}

func TestParallelEquivalenceTreeWalker(t *testing.T) {
	checkEquivalent(t, `
shared float a[16][16];
func main() {
    for i = pid() to 15 step nprocs() {
        for j = 0 to 15 {
            a[i][j] = i * j;
        }
    }
    barrier;
    var acc float = 0.0;
    for i = 0 to 15 {
        acc += a[i][pid() % 16];
    }
    print("acc", acc);
}
`, func(cfg *Config) { cfg.TreeWalk = true })
}

func TestParallelEquivalenceTraceMode(t *testing.T) {
	src := `
shared float a[32][8];
func main() {
    for i = pid() to 31 step nprocs() {
        for j = 0 to 7 {
            a[i][j] = i + j;
        }
    }
    barrier;
    var acc float = 0.0;
    for i = 0 to 31 {
        acc += a[i][pid() % 8];
    }
    barrier;
}
`
	seq, _, seqErr := runEngine(t, src, 0, func(cfg *Config) { cfg.Mode = ModeTrace })
	par, _, parErr := runEngine(t, src, 4, func(cfg *Config) { cfg.Mode = ModeTrace })
	if seqErr != nil || parErr != nil {
		t.Fatalf("trace runs failed: sequential %v, parallel %v", seqErr, parErr)
	}
	if seq.Cycles != par.Cycles {
		t.Fatalf("trace cycles diverge: %d vs %d", seq.Cycles, par.Cycles)
	}
	if !reflect.DeepEqual(seq.Trace, par.Trace) {
		t.Fatalf("miss traces diverge")
	}
}

// ParallelAuto and worker counts beyond the node count must behave like any
// other parallel run.
func TestParallelWorkerClamping(t *testing.T) {
	for _, workers := range []int{ParallelAuto, 1, 64} {
		seq, _, err := runEngine(t, `
shared int v[8];
func main() {
    v[pid()] = pid() * 3;
    barrier;
    var x int = v[(pid() + 1) % 8];
    barrier;
    v[pid()] = x;
}
`, 0, nil)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		par, _, err := runEngine(t, `
shared int v[8];
func main() {
    v[pid()] = pid() * 3;
    barrier;
    var x int = v[(pid() + 1) % 8];
    barrier;
    v[pid()] = x;
}
`, workers, nil)
		if err != nil {
			t.Fatalf("parallel(%d): %v", workers, err)
		}
		if seq.Cycles != par.Cycles || !reflect.DeepEqual(seq.Store.Words(), par.Store.Words()) {
			t.Fatalf("parallel(%d) diverges from sequential", workers)
		}
	}
}
