package sim

import (
	"testing"

	"cachier/internal/parc"
)

// schedulerSource is the ready-queue stress program: many processors with
// skewed per-round compute separated by barriers, so every quantum expiry
// and barrier release reschedules among P runnable contexts. This is the
// workload where the indexed min-heap replaces the seed's O(P) linear scan.
const schedulerSource = `
shared int sink[64];
func main() {
    var acc int = 0;
    for r = 0 to 40 {
        for j = 0 to 16 + pid() {
            acc += j;
        }
        barrier;
    }
    sink[pid()] = acc;
}
`

func benchScheduler(b *testing.B, parallel int) {
	prog, err := parc.Parse(schedulerSource)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Nodes = 64
	cfg.Parallel = parallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduler(b *testing.B) {
	// sequential: the in-place scheduler driving interpreters directly.
	b.Run("sequential", func(b *testing.B) { benchScheduler(b, 0) })
	// parallel: the same schedule via the epoch dispatcher — producer
	// goroutines logging events, the committer replaying them through the
	// identical heap. Measures dispatch overhead, bit-identical results.
	b.Run("parallel", func(b *testing.B) { benchScheduler(b, ParallelAuto) })
}
