package sim

import (
	"testing"

	"cachier/internal/parc"
)

// BenchmarkScheduler stresses the ready-queue: many processors with skewed
// per-round compute separated by barriers, so every quantum expiry and
// barrier release reschedules among P runnable contexts. This is the
// workload where the indexed min-heap replaces the seed's O(P) linear scan.
func BenchmarkScheduler(b *testing.B) {
	src := `
shared int sink[64];
func main() {
    var acc int = 0;
    for r = 0 to 40 {
        for j = 0 to 16 + pid() {
            acc += j;
        }
        barrier;
    }
    sink[pid()] = acc;
}
`
	prog, err := parc.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Nodes = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
