package sim

import (
	"strings"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
)

func TestLockFIFOHandoff(t *testing.T) {
	// Each node appends its pid to a shared log under one lock; the lock's
	// FIFO queue plus the deterministic scheduler make the order stable,
	// and no entries may be lost.
	res := runSrc(t, `
shared int log[64];
shared int cursor;
func main() {
    for r = 0 to 3 {
        lock(7);
        log[cursor] = pid() + 1;
        cursor += 1;
        unlock(7);
    }
}
`, cfg4())
	if got := load(t, res, "cursor").AsInt(); got != 16 {
		t.Fatalf("cursor = %d, want 16", got)
	}
	counts := map[int64]int{}
	for i := 0; i < 16; i++ {
		v := load(t, res, "log", i).AsInt()
		if v == 0 {
			t.Fatalf("log[%d] empty: lost update", i)
		}
		counts[v]++
	}
	for pid := int64(1); pid <= 4; pid++ {
		if counts[pid] != 4 {
			t.Errorf("pid %d appears %d times, want 4", pid-1, counts[pid])
		}
	}
}

func TestMultipleLocksIndependent(t *testing.T) {
	res := runSrc(t, `
shared int a;
shared int b;
func main() {
    if pid() % 2 == 0 {
        lock(0);
        a += 1;
        unlock(0);
    } else {
        lock(1);
        b += 1;
        unlock(1);
    }
}
`, cfg4())
	if load(t, res, "a").AsInt() != 2 || load(t, res, "b").AsInt() != 2 {
		t.Errorf("a=%d b=%d", load(t, res, "a").AsInt(), load(t, res, "b").AsInt())
	}
}

func TestRaceFreeProgramIdenticalAcrossModes(t *testing.T) {
	// Trace mode flushes caches at barriers and changes all the timing, but
	// a race-free program must compute the same values (Section 3.3 notes
	// only racy programs can change results under tracing).
	src := `
shared float A[64];
shared float out[4];
func main() {
    var per int = 64 / nprocs();
    var lo int = pid() * per;
    if pid() == 0 {
        rndseed(3);
        for i = 0 to 63 { A[i] = rnd(); }
    }
    barrier;
    var s float = 0.0;
    for i = lo to lo + per - 1 { s += A[i] * 2.0; }
    out[pid()] = s;
    barrier;
}
`
	perf := runSrc(t, src, cfg4())
	traceCfg := cfg4()
	traceCfg.Mode = ModeTrace
	traced := runSrc(t, src, traceCfg)
	for i := 0; i < 4; i++ {
		a1, _ := perf.Layout.AddrOf("out", i)
		a2, _ := traced.Layout.AddrOf("out", i)
		if perf.Store.Load(a1) != traced.Store.Load(a2) {
			t.Errorf("out[%d] differs between perf and trace modes", i)
		}
	}
}

func TestTraceVTsMatchBarrierOrder(t *testing.T) {
	cfg := cfg4()
	cfg.Mode = ModeTrace
	res := runSrc(t, `
shared int x;
func main() {
    x = 1;
    barrier;
    x = 2;
    barrier;
    x = 3;
}
`, cfg)
	tr := res.Trace
	if len(tr.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(tr.Epochs))
	}
	for e := 1; e < len(tr.Epochs); e++ {
		for n := 0; n < 4; n++ {
			if tr.Epochs[e].VT[n] < tr.Epochs[e-1].VT[n] {
				t.Errorf("node %d VT not monotone at epoch %d", n, e)
			}
		}
	}
	// The two mid-program epochs end at different barrier statements.
	if tr.Epochs[0].BarrierPC == tr.Epochs[1].BarrierPC {
		t.Error("distinct barriers share a PC")
	}
}

func TestPrefetchReducesStall(t *testing.T) {
	// With computation between the prefetch and the use, the transfer is
	// fully overlapped; the same program without prefetch pays the miss.
	with := runSrc(t, `
shared float A[128];
func main() {
    if pid() == 0 {
        for i = 0 to 127 { A[i] = 1.0; }
        check_in A[0:127];
    }
    barrier;
    prefetch_s A[0:127];
    var acc float = 0.0;
    for i = 0 to 2000 { acc += float(i); }
    var s float = 0.0;
    for i = 0 to 127 { s += A[i]; }
}
`, cfg4())
	without := runSrc(t, `
shared float A[128];
func main() {
    if pid() == 0 {
        for i = 0 to 127 { A[i] = 1.0; }
        check_in A[0:127];
    }
    barrier;
    var acc float = 0.0;
    for i = 0 to 2000 { acc += float(i); }
    var s float = 0.0;
    for i = 0 to 127 { s += A[i]; }
}
`, cfg4())
	if with.Stats.PrefetchHits == 0 {
		t.Error("no prefetch hits")
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("prefetch did not help: %d vs %d cycles", with.Cycles, without.Cycles)
	}
}

func TestPerVarDirectiveCounts(t *testing.T) {
	cfg := cfg4()
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	res := runSrc(t, `
shared float A[32] label "matA";
shared float B[32];
func main() {
    if pid() == 0 {
        check_out_x A[0:31];
        check_in A[0:31];
        check_out_s B[0:7];
        prefetch_x B[8];
        prefetch_s B[16];
    }
}
`, cfg)
	a := res.Snapshot.VarByName("A")
	if a.CheckOutX != 8 || a.CheckIns != 8 || a.CheckOuts() != 8 {
		t.Errorf("A directives: %+v", a)
	}
	b := res.Snapshot.VarByName("B")
	if b.CheckOutS != 2 || b.PrefetchX != 1 || b.PrefetchS != 1 {
		t.Errorf("B directives: %+v", b)
	}
}

func TestZeroNodesRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 0
	prog := parc.MustParse(`func main() { }`)
	if _, err := Run(prog, cfg); err == nil || !strings.Contains(err.Error(), "at least one node") {
		t.Errorf("err = %v", err)
	}
}

func TestWhileLoopSpinOnSharedFlag(t *testing.T) {
	// A classic flag handoff: node 1 spins on a shared flag that node 0
	// sets. The scheduler must keep both making progress.
	res := runSrc(t, `
shared int flag;
shared int got;
func main() {
    if pid() == 0 {
        var acc int = 0;
        for i = 0 to 5000 { acc += i; }
        flag = 1;
        check_in flag;
    }
    if pid() == 1 {
        while flag == 0 {
        }
        got = 41 + flag;
    }
}
`, cfg4())
	if v := load(t, res, "got").AsInt(); v != 42 {
		t.Errorf("got = %d", v)
	}
}
