package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cachier/internal/obs"
)

// checkLanesEquivalent asserts the lane-batched run of src is bit-identical
// to the sequential run on every observable surface, and that it actually
// executed on the lane engine (wantEngine engineLanes) rather than silently
// falling back.
func checkLanesEquivalent(t *testing.T, src string, wantEngine string, mutate func(*Config)) {
	t.Helper()
	seq, seqRec, seqErr := runEngine(t, src, 0, mutate)
	lane, laneRec, laneErr := runEngine(t, src, 0, func(cfg *Config) {
		cfg.Lanes = true
		if mutate != nil {
			mutate(cfg)
		}
	})

	if (seqErr == nil) != (laneErr == nil) {
		t.Fatalf("error divergence: sequential %v, lanes %v", seqErr, laneErr)
	}
	if seqErr != nil {
		if seqErr.Error() != laneErr.Error() {
			t.Fatalf("error text divergence:\nsequential: %v\nlanes:      %v", seqErr, laneErr)
		}
		return
	}
	if lane.Engine != wantEngine {
		t.Fatalf("lanes run reported engine %q, want %q", lane.Engine, wantEngine)
	}
	if seq.Cycles != lane.Cycles {
		t.Errorf("cycles: sequential %d, lanes %d", seq.Cycles, lane.Cycles)
	}
	if !reflect.DeepEqual(seq.NodeCycles, lane.NodeCycles) {
		t.Errorf("node cycles diverge:\nsequential: %v\nlanes:      %v", seq.NodeCycles, lane.NodeCycles)
	}
	if seq.Stats != lane.Stats {
		t.Errorf("stats diverge:\nsequential: %+v\nlanes:      %+v", seq.Stats, lane.Stats)
	}
	if !reflect.DeepEqual(seq.Output, lane.Output) {
		t.Errorf("output diverges:\nsequential: %q\nlanes:      %q", seq.Output, lane.Output)
	}
	if seq.Barriers != lane.Barriers {
		t.Errorf("barriers: sequential %d, lanes %d", seq.Barriers, lane.Barriers)
	}
	if !reflect.DeepEqual(seq.Store.Words(), lane.Store.Words()) {
		t.Errorf("shared memory diverges")
	}
	seqSnap, err := seq.Snapshot.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal sequential snapshot: %v", err)
	}
	laneSnap, err := lane.Snapshot.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal lanes snapshot: %v", err)
	}
	if !bytes.Equal(seqSnap, laneSnap) {
		t.Errorf("snapshots diverge:\nsequential:\n%s\nlanes:\n%s", seqSnap, laneSnap)
	}
	var seqTL, laneTL bytes.Buffer
	if err := seqRec.Timeline("t").WriteJSON(&seqTL); err != nil {
		t.Fatalf("sequential timeline: %v", err)
	}
	if err := laneRec.Timeline("t").WriteJSON(&laneTL); err != nil {
		t.Fatalf("lanes timeline: %v", err)
	}
	if !bytes.Equal(seqTL.Bytes(), laneTL.Bytes()) {
		t.Errorf("timelines diverge")
	}
}

// TestLanesMaskedLockParkUnpark exercises the execution mask around lock
// traps: every lane contends for one lock, so each acquisition parks the
// losers (mask cleared, no stepping while parked) and the release unparks
// exactly one waiter in FIFO order. The prints inside the critical section
// pin the handoff order against the sequential scheduler's.
func TestLanesMaskedLockParkUnpark(t *testing.T) {
	checkLanesEquivalent(t, `
shared int turn[1];
func main() {
    var spin int = 0;
    for i = 0 to pid() * 7 { spin += i; }
    lock(3);
    print("enter", pid(), turn[0]);
    turn[0] += 1;
    unlock(3);
    barrier;
    if (pid() == 0) { print("total", turn[0]); }
}
`, engineLanes, nil)
}

// TestLanesBarrierQuiescenceOrder exercises the epoch bucket: lanes arrive
// at the barrier at staggered clocks (different work before it), the last
// arrival releases everyone at one clock, and the released lanes must then
// step in pid order — observable as the print order after the barrier,
// which the sequential oracle fixes.
func TestLanesBarrierQuiescenceOrder(t *testing.T) {
	checkLanesEquivalent(t, `
shared int v[8];
func main() {
    var spin int = 0;
    for i = 0 to (7 - pid()) * 11 { spin += i; }
    v[pid()] = spin + pid();
    barrier;
    print("after", pid(), v[(pid() + 1) % 8]);
    barrier;
}
`, engineLanes, nil)
}

// TestLanesUnlockFaultKillsLane: unlocking an unheld lock is a machine
// fault; with no goroutine to panic-unwind, the lane engine must kill the
// lane in place and report the same error text as the sequential engine.
func TestLanesUnlockFault(t *testing.T) {
	checkLanesEquivalent(t, `
shared int v[8];
func main() {
    v[pid()] = pid();
    if (pid() == 3) {
        unlock(9);
    }
    v[pid()] = v[pid()] + 1;
}
`, engineLanes, nil)
}

// TestLanesDeadlock: a processor exits holding a lock the others want; the
// lane scheduler must detect the empty heap+bucket with masked lanes still
// waiting and produce the sequential engine's diagnostic.
func TestLanesDeadlock(t *testing.T) {
	checkLanesEquivalent(t, `
func main() {
    if (pid() == 0) {
        lock(1);
    }
    if (pid() != 0) {
        lock(1);
        unlock(1);
    }
}
`, engineLanes, nil)
}

// TestLanesSingleNode: one lane, mask of one — the degenerate machine must
// still take the lane engine and agree with sequential.
func TestLanesSingleNode(t *testing.T) {
	checkLanesEquivalent(t, `
shared int v[1];
func main() {
    for i = 0 to 63 { v[0] += i; }
    print("v", v[0]);
}
`, engineLanes, func(cfg *Config) {
		cfg.Nodes = 1
		// runEngine sized its recorder for the default node count; rebuild
		// it for the shrunken machine.
		cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		cfg.Recorder.EnableTimeline()
	})
}

// TestLanesTreeWalkFallback: the tree-walker cannot suspend mid-statement,
// so Lanes with TreeWalk must fall back to the sequential engine and say so
// in the engine label.
func TestLanesTreeWalkFallback(t *testing.T) {
	checkLanesEquivalent(t, `
shared int v[8];
func main() {
    v[pid()] = pid() * 2;
    barrier;
    if (pid() == 0) { print("v3", v[3]); }
}
`, engineLanesFallback, func(cfg *Config) { cfg.TreeWalk = true })
}

// TestLanesParallelComposition: Parallel takes precedence and runs the lane
// stepper inside each epoch producer; the engine label stays "parallel" and
// every observable matches the sequential oracle.
func TestLanesParallelComposition(t *testing.T) {
	src := `
shared float a[16][16];
func main() {
    for i = pid() to 15 step nprocs() {
        for j = 0 to 15 {
            a[i][j] = i * j + pid();
        }
    }
    barrier;
    var acc float = 0.0;
    for i = 0 to 15 {
        acc += a[i][pid() % 16];
    }
    print("acc", acc);
}
`
	seq, _, seqErr := runEngine(t, src, 0, nil)
	both, _, bothErr := runEngine(t, src, 4, func(cfg *Config) { cfg.Lanes = true })
	if seqErr != nil || bothErr != nil {
		t.Fatalf("runs failed: sequential %v, lanes+parallel %v", seqErr, bothErr)
	}
	if both.Engine != engineParallel {
		t.Fatalf("lanes+parallel run reported engine %q, want %q", both.Engine, engineParallel)
	}
	if seq.Cycles != both.Cycles || seq.Stats != both.Stats {
		t.Fatalf("lanes+parallel diverges from sequential: cycles %d vs %d", seq.Cycles, both.Cycles)
	}
	if !reflect.DeepEqual(seq.Output, both.Output) {
		t.Fatalf("lanes+parallel output diverges")
	}
	if !reflect.DeepEqual(seq.Store.Words(), both.Store.Words()) {
		t.Fatalf("lanes+parallel memory diverges")
	}
}

// TestLanesLockContentionFIFO pins the waiter queue order specifically: the
// lock handoff must be first-come-first-served by simulated arrival, not by
// pid or by lane stepping order. The enter prints encode the acquisition
// sequence; both engines must produce the identical sequence.
func TestLanesLockContentionFIFO(t *testing.T) {
	src := `
shared int order[9];
func main() {
    var spin int = 0;
    for i = 0 to (pid() * 13) % 29 { spin += i; }
    lock(5);
    order[8] += 1;
    order[order[8] - 1] = pid();
    print("slot", order[8] - 1, pid());
    unlock(5);
    barrier;
}
`
	seq, _, seqErr := runEngine(t, src, 0, nil)
	lane, _, laneErr := runEngine(t, src, 0, func(cfg *Config) { cfg.Lanes = true })
	if seqErr != nil || laneErr != nil {
		t.Fatalf("runs failed: sequential %v, lanes %v", seqErr, laneErr)
	}
	if lane.Engine != engineLanes {
		t.Fatalf("lanes run reported engine %q", lane.Engine)
	}
	if !reflect.DeepEqual(seq.Output, lane.Output) {
		t.Fatalf("acquisition order diverges:\nsequential: %q\nlanes:      %q",
			strings.Join(seq.Output, "; "), strings.Join(lane.Output, "; "))
	}
	if !reflect.DeepEqual(seq.Store.Words(), lane.Store.Words()) {
		t.Fatalf("order array diverges")
	}
}
