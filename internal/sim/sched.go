package sim

// readyHeap is a binary min-heap of parked, runnable processors ordered by
// (clock, id). The id tie-break keeps scheduling deterministic: among equal
// clocks the lowest processor ID runs first, exactly as the original linear
// scan over procs in ID order chose it.
//
// The heap holds every statusReady processor EXCEPT the one currently
// executing. Processors enter the heap when they park while still runnable
// (quantum exhausted) or when a barrier release or lock handoff makes them
// runnable again, and leave only via pop. Blocked processors (barrier, lock)
// are never in the heap, and a processor's clock never changes while it is
// parked, so no re-keying is ever needed.
type readyHeap struct {
	ps []*proc
}

func (h *readyHeap) len() int { return len(h.ps) }

// min returns the runnable processor that must run next; the heap must be
// non-empty.
func (h *readyHeap) min() *proc { return h.ps[0] }

func heapLess(a, b *proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (h *readyHeap) push(p *proc) {
	h.ps = append(h.ps, p)
	i := len(h.ps) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h.ps[i], h.ps[parent]) {
			break
		}
		h.ps[i], h.ps[parent] = h.ps[parent], h.ps[i]
		i = parent
	}
}

func (h *readyHeap) pop() *proc {
	top := h.ps[0]
	last := len(h.ps) - 1
	h.ps[0] = h.ps[last]
	h.ps[last] = nil
	h.ps = h.ps[:last]
	h.siftDown()
	return top
}

// replaceMin swaps p in for the current minimum and restores heap order with
// a single sift-down, replacing the pop-then-push pair on the scheduler's
// handoff path. The caller must have read min() first; the popped order is
// unaffected because (clock, id) is a strict total order, so which array
// layout the heap happens to hold never changes which processor pops next.
func (h *readyHeap) replaceMin(p *proc) {
	h.ps[0] = p
	h.siftDown()
}

// siftDown restores heap order after the root was replaced.
func (h *readyHeap) siftDown() {
	n := len(h.ps)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && heapLess(h.ps[l], h.ps[smallest]) {
			smallest = l
		}
		if r < n && heapLess(h.ps[r], h.ps[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ps[i], h.ps[smallest] = h.ps[smallest], h.ps[i]
		i = smallest
	}
}
