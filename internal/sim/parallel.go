// Epoch-parallel execution engine.
//
// Between two barriers, simulated nodes interact only through the Dir1SW
// directory: the values a node reads can depend on other nodes, but only via
// shared memory, and the paper's programming model orders cross-node data
// flow with barriers and locks. The engine exploits that: every node's
// interpreter runs speculatively on its own goroutine against a frozen
// epoch-start image of shared memory, accumulating a private log of protocol
// events, while a single committer goroutine merges the logs by driving the
// unchanged sequential Machine — same min-(clock, id) scheduler, same cost
// model, same recorder hooks — so the committed order IS the sequential
// schedule and every observable result (cycles, stats, output, Snapshot,
// timeline) is bit-identical by construction.
//
// Speculation is validated, not trusted: every speculative load logs the
// value the interpreter consumed, and the committer re-checks it against the
// live store at the exact position in the committed order where the
// sequential engine would have performed the load (for an access whose
// scheduling decision suspends the node, that is when the scheduler next
// runs it — the check and the store-apply are carried as pending work on the
// node's cursor until then). A mismatch means the program has cross-node
// data flow that barriers and locks do not order (a race); the engine halts
// and Run re-executes sequentially, which is authoritative.
//
// Lock-protected data flow is kept exact rather than speculated: from lock
// acquire to final release a node runs in "direct" mode, where every event
// is a synchronous send+ack round trip with the committer, so its loads can
// safely read the live store at the node's true position in the schedule
// (the committer is parked between the ack and the next event, and nothing
// else touches the store).
//
// At each barrier all live producers are blocked waiting for their release
// ack, which makes the barrier the one quiescent point: the committer folds
// the epoch's committed writes into the shared shadow image (dirty pages
// only) before acking, and each producer drops its private copy-on-write
// pages, so the next epoch speculates from the post-barrier memory state.
package sim

import (
	"errors"
	"runtime"
	"sync"

	"cachier/internal/interp"
	"cachier/internal/parc"
)

// Private-page and batching geometry. Pages are 512 words (4 KB) — big
// enough that copy-on-write faults are rare, small enough that a node
// touching one element does not copy a whole array. Event batches amortize
// the producer→committer channel handoff over specBatch events.
const (
	pageShift = 9
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
	specBatch = 512
	outDepth  = 4 // per-node in-flight batches; bounds producer run-ahead
)

type pevKind uint8

// Protocol event kinds. evRead/evWrite are Machine.Access calls; the value
// side of an access — the speculative load to validate, the store to land —
// rides on the same event as evfCheck/evfApply flags, patched in by the
// producer's Load/StoreWord immediately after it logs the Access (the
// interpreter's contract is that the data touch directly follows the Access
// report). evCheck/evWApply are the standalone forms, used when an event
// cannot be patched (direct-mode stores, or a data touch whose Access event
// was already flushed).
const (
	evWork pevKind = iota
	evRead
	evWrite
	evCheck
	evWApply
	evDirective
	evBarrier
	evLock
	evUnlock
	evPrint
	evDone
)

// pEvent flags: which value actions ride on an evRead/evWrite.
const (
	evfCheck uint8 = 1 << iota // validate a: the speculative load's value
	evfApply                   // land b in the live store
)

// pEvent is one logged protocol event, sized for the hot path (32 bytes —
// accesses dominate event traffic). Cold payloads (directive ranges, print
// text, completion errors, counter snapshots) live in a parallel aux stream;
// an aux-bearing event consumes the batch's next pAux.
type pEvent struct {
	kind  pevKind
	flags uint8
	ann   uint8 // parc.AnnKind, for evDirective
	pc    int32
	addr  uint64 // address, or lock id for evLock/evUnlock
	a     uint64 // checked word / work cycles
	b     uint64 // applied word
}

// pAux carries one cold event payload: evDirective (ranges), evPrint (text),
// evUnlock (counter snapshot for fault retirement), evDone (error + final
// counters).
type pAux struct {
	ranges   []interp.AddrRange
	text     string
	err      error
	pr, pw   uint64
	diverged bool // evDone: producer panicked on speculative state
}

// pBatch is one producer→committer handoff: events plus their aux payloads
// in matching FIFO order.
type pBatch struct {
	evs []pEvent
	aux []pAux
}

type parAck struct {
	die bool // terminate the producer (committer retired its processor)
}

// parCursor is the committer's view of one node's event stream plus the
// mirrored producer mode (direct/lock depth) needed to run the ack protocol.
type parCursor struct {
	out  chan pBatch
	free chan pBatch // recycled batches back to the producer
	ack  chan parAck
	die  chan struct{} // closed to kill a free-running speculative producer

	buf    []pEvent
	aux    []pAux
	pos    int
	auxPos int

	// pend holds an access's deferred value actions when the scheduler
	// switched away inside Machine.Access: they settle when the node is
	// next scheduled, which is exactly when the sequential interpreter
	// would have touched the store.
	pend    pEvent
	hasPend bool

	direct     bool // producer is lock-synchronous; every event is acked
	lockDepth  int
	ackPending bool // producer is blocked awaiting an ack from next()
	atBarrier  bool // producer is blocked awaiting the epoch-roll ack
}

// parEngine drives one parallel run. It is owned by the committer goroutine
// (the Run caller); producers touch only their own specNode, their cursor's
// channels, and the immutable shadow image.
type parEngine struct {
	m        *Machine
	cur      *proc // whose stream the committer consumes next
	halt     bool  // stop the commit loop (completion, deadlock, conflict)
	conflict bool  // halt was a speculation conflict: fall back to sequential

	cursors []*parCursor

	liveW      []uint64 // the live store's backing words
	shadow     []uint64 // epoch-start image, padded to a page multiple
	dirty      []bool   // live pages written since the last epoch roll
	dirtyPages []int

	slots chan struct{} // semaphore bounding concurrently-running producers
	abort chan struct{} // closed at teardown; unblocks every producer
	wg    sync.WaitGroup
}

// runParallel executes prog on the epoch-parallel engine. ok reports whether
// the run is authoritative; ok == false means a speculation conflict was
// detected and the caller must re-run sequentially.
func runParallel(prog *parc.Program, cfg Config) (res *Result, err error, ok bool) {
	m, _, err := newMachine(prog, cfg)
	if err != nil {
		return nil, err, true
	}
	workers := cfg.Parallel
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Nodes {
		workers = cfg.Nodes
	}
	if workers < 1 {
		workers = 1
	}

	liveW := m.store.Words()
	npages := (len(liveW) + pageWords - 1) / pageWords
	shadow := make([]uint64, npages*pageWords)
	copy(shadow, liveW)
	eng := &parEngine{
		m:       m,
		cursors: make([]*parCursor, cfg.Nodes),
		liveW:   liveW,
		shadow:  shadow,
		dirty:   make([]bool, npages),
		slots:   make(chan struct{}, workers),
		abort:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		eng.slots <- struct{}{}
	}
	m.par = eng

	// Producers get their own interpreter contexts wired to a specNode —
	// the speculative Machine + Memory — instead of the live machine.
	ctxs := make([]*interp.Context, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		eng.cursors[i] = &parCursor{
			out:  make(chan pBatch, outDepth),
			free: make(chan pBatch, outDepth),
			ack:  make(chan parAck),
			die:  make(chan struct{}),
		}
		n := &specNode{
			eng:    eng,
			node:   i,
			c:      eng.cursors[i],
			live:   m.store,
			shadow: shadow,
			pages:  make([][]uint64, npages),
			buf:    make([]pEvent, 0, specBatch),
		}
		ctxs[i] = interp.NewContext(prog, m.store, n, i, cfg.Nodes)
		if cfg.TreeWalk {
			ctxs[i].UseTreeWalker()
		}
		if cfg.Lanes {
			// Lanes + Parallel compose at the interpreter: each producer
			// runs the lane stepper to completion instead of the recursive
			// VM. Results are identical either way, so the engine label
			// stays "parallel".
			ctxs[i].UseLaneVM()
		}
		ctxs[i].CountOps(cfg.Recorder != nil)
		ctxs[i].SetMemory(n)
		n.ctx = ctxs[i]
		eng.wg.Add(1)
		go eng.runProducer(ctxs[i], n)
	}

	// Identical scheduler bootstrap to the sequential engine: processor 0
	// runs, everyone else is parked runnable at clock 0.
	for i := 1; i < cfg.Nodes; i++ {
		m.ready.push(m.procs[i])
	}
	m.refreshLimit()
	eng.cur = m.procs[0]

	for !eng.halt {
		node := eng.cur.id
		ev, live := eng.next(eng.cursors[node])
		if !live {
			break
		}
		eng.commit(node, ev)
	}

	close(eng.abort)
	eng.wg.Wait()
	m.par = nil
	if eng.conflict {
		return nil, nil, false
	}
	res, err = m.buildResult(ctxs)
	if res != nil {
		res.Engine = engineParallel
	}
	return res, err, true
}

// next yields the current node's next logged event, first settling the
// node's deferred value actions and running the ack handshake its producer
// mode requires: a producer that sent a synchronous event is released
// exactly when the committer returns to its stream — i.e. when the
// scheduler runs the node again.
func (eng *parEngine) next(c *parCursor) (pEvent, bool) {
	if c.hasPend {
		c.hasPend = false
		eng.settle(c.pend)
		if eng.halt {
			return pEvent{}, false
		}
	}
	if c.ackPending {
		c.ackPending = false
		c.ack <- parAck{}
	}
	for c.pos >= len(c.buf) {
		if c.buf != nil {
			select {
			case c.free <- pBatch{evs: c.buf[:0], aux: c.aux[:0]}:
			default:
			}
			c.buf, c.aux = nil, nil
		}
		b := <-c.out
		c.buf, c.aux = b.evs, b.aux
		c.pos, c.auxPos = 0, 0
	}
	ev := c.buf[c.pos]
	c.pos++
	if c.direct {
		// Direct-mode producers block after every send; owe them an ack
		// the next time the schedule comes back around to this node.
		c.ackPending = true
	}
	return ev, true
}

// takeAux consumes the cursor's next cold payload; commit calls it exactly
// once per aux-bearing event kind, keeping the two streams in lockstep
// without copying a pAux for the hot access/work events.
func (c *parCursor) takeAux() *pAux {
	a := &c.aux[c.auxPos]
	c.auxPos++
	return a
}

// settle performs an access's value actions at the node's current schedule
// position: validate the speculative load, land the store.
func (eng *parEngine) settle(ev pEvent) {
	if ev.flags&evfCheck != 0 {
		if eng.m.store.Load(ev.addr) != ev.a {
			// The speculative load consumed a value the committed order
			// does not produce: unordered cross-node data flow.
			eng.conflict = true
			eng.halt = true
			return
		}
	}
	if ev.flags&evfApply != 0 {
		eng.m.store.StoreWord(ev.addr, ev.b)
		eng.markDirty(ev.addr)
	}
}

// commit applies one event to the live machine in committed order. All
// timing, scheduling, recording, and protocol work happens inside the
// unchanged sequential Machine methods.
func (eng *parEngine) commit(node int, ev pEvent) {
	m := eng.m
	c := eng.cursors[node]
	switch ev.kind {
	case evWork:
		m.Work(node, ev.a)
	case evRead, evWrite:
		p := m.procs[node]
		m.Access(node, ev.kind == evWrite, ev.addr, int(ev.pc))
		if ev.flags != 0 {
			// The data touch happens when the node next runs: now if the
			// access kept it scheduled, else when the scheduler returns.
			if eng.cur == p {
				eng.settle(ev)
			} else {
				c.pend = ev
				c.hasPend = true
			}
		}
	case evCheck:
		eng.settle(pEvent{flags: evfCheck, addr: ev.addr, a: ev.a})
	case evWApply:
		eng.settle(pEvent{flags: evfApply, addr: ev.addr, b: ev.b})
	case evDirective:
		m.Directive(node, parc.AnnKind(ev.ann), c.takeAux().ranges, int(ev.pc))
	case evBarrier:
		c.ackPending = false // the epoch roll acks barrier waiters
		c.atBarrier = true
		c.direct = false // post-barrier code speculates even under a lock
		m.Barrier(node, int(ev.pc))
	case evLock:
		c.lockDepth++
		c.direct = true
		c.ackPending = true // released when granted and scheduled
		m.Lock(node, int64(ev.addr), int(ev.pc))
	case evUnlock:
		aux := c.takeAux()
		wasDirect := c.direct
		c.lockDepth--
		if c.lockDepth <= 0 {
			c.direct = false
		}
		if fault := m.unlockCore(node, int64(ev.addr)); fault != nil {
			// Mirror the sequential panic: the processor terminates at the
			// faulting unlock with its counters as of this instant.
			c.ackPending = false
			if wasDirect {
				c.ack <- parAck{die: true}
			} else {
				close(c.die)
			}
			m.finishProc(m.procs[node], fault, aux.pr, aux.pw)
		}
	case evPrint:
		m.Print(node, c.takeAux().text)
	case evDone:
		aux := c.takeAux()
		c.ackPending = false
		if aux.diverged {
			// The producer crashed on speculative state; whether the crash
			// is real only the sequential semantics can say.
			eng.conflict = true
			eng.halt = true
			return
		}
		m.finishProc(m.procs[node], aux.err, aux.pr, aux.pw)
	}
}

// epochRoll runs inside releaseBarrier, when every live producer is blocked
// on its barrier ack: fold the epoch's committed writes into the shadow
// image, then release the waiters into the next epoch.
func (eng *parEngine) epochRoll() {
	live := eng.liveW
	for _, pg := range eng.dirtyPages {
		lo := pg << pageShift
		hi := lo + pageWords
		if hi > len(live) {
			hi = len(live)
		}
		copy(eng.shadow[lo:hi], live[lo:hi])
		eng.dirty[pg] = false
	}
	eng.dirtyPages = eng.dirtyPages[:0]
	for _, c := range eng.cursors {
		if c.atBarrier {
			c.atBarrier = false
			c.ack <- parAck{}
		}
	}
}

func (eng *parEngine) markDirty(addr uint64) {
	pg := int(addr / parc.ElemSize >> pageShift)
	if !eng.dirty[pg] {
		eng.dirty[pg] = true
		eng.dirtyPages = append(eng.dirtyPages, pg)
	}
}

// runProducer is one node's speculative interpreter goroutine.
func (eng *parEngine) runProducer(ctx *interp.Context, n *specNode) {
	defer eng.wg.Done()
	defer n.releaseSlot()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if err, isErr := r.(error); isErr && errors.Is(err, errAborted) {
			return // committer tore us down (halt, fault kill, or conflict)
		}
		// The interpreter panicked. On speculative state that can be a
		// divergence artifact rather than a real program fault, so don't
		// crash the process: report it and let the committer fall back to
		// the authoritative sequential run (which reproduces any genuine
		// panic). Best-effort send — never re-panic inside a recover.
		n.releaseSlot()
		b := pBatch{
			evs: append(n.buf[:0], pEvent{kind: evDone}),
			aux: append(n.aux[:0], pAux{diverged: true}),
		}
		select {
		case n.c.out <- b:
		case <-n.eng.abort:
		case <-n.c.die:
		}
	}()
	n.acquireSlot()
	err := ctx.Run()
	pr, pw := ctx.PrivateAccesses()
	n.pushAux(pEvent{kind: evDone}, pAux{err: err, pr: pr, pw: pw})
	n.flushBuf()
}

// specNode is one node's speculative execution state: it implements
// interp.Machine by logging events and interp.Memory by reading the epoch
// shadow overlaid with the node's private copy-on-write pages (or, in
// direct mode, the live store at the node's true schedule position).
type specNode struct {
	eng  *parEngine
	node int
	ctx  *interp.Context
	c    *parCursor

	live   *interp.Store
	shadow []uint64

	pages     [][]uint64 // private COW pages, indexed by page number
	touched   []int
	freePages [][]uint64

	buf       []pEvent
	aux       []pAux
	direct    bool
	lockDepth int
	hasSlot   bool
}

// --- event transport (producer side) ---

// push logs a speculative event, flushing the batch first if it is full (so
// the logged event survives for patching until the next push).
func (n *specNode) push(ev pEvent) {
	if len(n.buf) >= specBatch {
		n.flushBuf()
	}
	n.buf = append(n.buf, ev)
}

// pushAux logs an event with a cold payload.
func (n *specNode) pushAux(ev pEvent, aux pAux) {
	n.push(ev)
	n.aux = append(n.aux, aux)
}

// sync logs a synchronous event: flush everything and block until the
// committer has applied it and scheduled this node again.
func (n *specNode) sync(ev pEvent) {
	n.push(ev)
	n.flushBuf()
	n.waitAck()
}

func (n *specNode) flushBuf() {
	if len(n.buf) == 0 {
		return
	}
	b := pBatch{evs: n.buf, aux: n.aux}
	select {
	case n.c.out <- b:
	default:
		// Channel full: release the run slot while blocked so other
		// producers (possibly the one the committer is waiting on) can run.
		n.releaseSlot()
		select {
		case n.c.out <- b:
		case <-n.eng.abort:
			panic(errAborted)
		case <-n.c.die:
			panic(errAborted)
		}
		n.acquireSlot()
	}
	select {
	case r := <-n.c.free:
		n.buf, n.aux = r.evs, r.aux
	default:
		n.buf, n.aux = make([]pEvent, 0, specBatch), nil
	}
}

func (n *specNode) waitAck() {
	n.releaseSlot()
	select {
	case a := <-n.c.ack:
		if a.die {
			panic(errAborted)
		}
		n.acquireSlot()
	case <-n.eng.abort:
		panic(errAborted)
	case <-n.c.die:
		panic(errAborted)
	}
}

func (n *specNode) acquireSlot() {
	select {
	case <-n.eng.slots:
		n.hasSlot = true
	case <-n.eng.abort:
		panic(errAborted)
	case <-n.c.die:
		panic(errAborted)
	}
}

func (n *specNode) releaseSlot() {
	if n.hasSlot {
		n.hasSlot = false
		n.eng.slots <- struct{}{}
	}
}

// --- interp.Memory implementation ---

// Load reads shared data. Speculative loads come from the node's private
// view, and the value consumed is patched onto the access event just logged
// for validation at the commit position; direct-mode loads read the live
// store, which is exact because the committer is parked at this node's
// position with every prior store landed.
func (n *specNode) Load(addr uint64) uint64 {
	if n.direct {
		return n.live.Load(addr)
	}
	w := addr / parc.ElemSize
	var v uint64
	if p := n.pages[w>>pageShift]; p != nil {
		v = p[w&pageMask]
	} else {
		v = n.shadow[w]
	}
	if i := len(n.buf) - 1; i >= 0 {
		if e := &n.buf[i]; (e.kind == evRead || e.kind == evWrite) && e.addr == addr && e.flags&evfCheck == 0 {
			e.flags |= evfCheck
			e.a = v
			return v
		}
	}
	n.push(pEvent{kind: evCheck, addr: addr, a: v})
	return v
}

// StoreWord writes shared data into the node's private page (so its own
// later loads see it) and logs the store for the committer to land on the
// live store at the exact committed position. Direct mode keeps the private
// copy too: it is what post-unlock speculation resumes from.
func (n *specNode) StoreWord(addr uint64, bits uint64) {
	w := addr / parc.ElemSize
	pg := int(w >> pageShift)
	p := n.pages[pg]
	if p == nil {
		p = n.newPage(pg)
	}
	p[w&pageMask] = bits
	if n.direct {
		n.sync(pEvent{kind: evWApply, addr: addr, b: bits})
		return
	}
	if i := len(n.buf) - 1; i >= 0 {
		if e := &n.buf[i]; e.kind == evWrite && e.addr == addr && e.flags&evfApply == 0 {
			e.flags |= evfApply
			e.b = bits
			return
		}
	}
	n.push(pEvent{kind: evWApply, addr: addr, b: bits})
}

func (n *specNode) newPage(pg int) []uint64 {
	var p []uint64
	if k := len(n.freePages) - 1; k >= 0 {
		p = n.freePages[k]
		n.freePages = n.freePages[:k]
	} else {
		p = make([]uint64, pageWords)
	}
	copy(p, n.shadow[pg<<pageShift:(pg+1)<<pageShift])
	n.pages[pg] = p
	n.touched = append(n.touched, pg)
	return p
}

// resetPages drops the node's private pages at a barrier: the committer has
// already folded every committed write into the shadow.
func (n *specNode) resetPages() {
	for _, pg := range n.touched {
		n.freePages = append(n.freePages, n.pages[pg])
		n.pages[pg] = nil
	}
	n.touched = n.touched[:0]
}

// --- interp.Machine implementation ---

func (n *specNode) Access(node int, write bool, addr uint64, pc int) {
	k := evRead
	if write {
		k = evWrite
	}
	ev := pEvent{kind: k, addr: addr, pc: int32(pc)}
	if n.direct {
		// Direct mode is synchronous: the node's schedule position must be
		// exact before the Load/StoreWord that follows touches live memory.
		n.sync(ev)
		return
	}
	if len(n.buf) >= specBatch {
		n.flushBuf()
	}
	n.buf = append(n.buf, ev)
}

func (n *specNode) Directive(node int, kind parc.AnnKind, ranges []interp.AddrRange, pc int) {
	// The interpreter reuses the ranges scratch buffer; the log retains it.
	ev := pEvent{kind: evDirective, ann: uint8(kind), pc: int32(pc)}
	aux := pAux{ranges: append([]interp.AddrRange(nil), ranges...)}
	if n.direct {
		n.pushAux(ev, aux)
		n.flushBuf()
		n.waitAck()
		return
	}
	n.pushAux(ev, aux)
}

func (n *specNode) Barrier(node int, pc int) {
	n.direct = false // exit direct mode: the epoch roll resyncs everything
	n.push(pEvent{kind: evBarrier, pc: int32(pc)})
	n.flushBuf()
	n.waitAck() // released by the epoch roll
	n.resetPages()
}

func (n *specNode) Lock(node int, id int64, pc int) {
	n.push(pEvent{kind: evLock, addr: uint64(id), pc: int32(pc)})
	n.flushBuf()
	n.waitAck() // acked when the lock is granted and this node is scheduled
	n.lockDepth++
	n.direct = true
}

func (n *specNode) Unlock(node int, id int64, pc int) {
	// Snapshot the private-access tallies: if this unlock faults, the
	// committer retires the processor with the counters as of this call,
	// exactly like the sequential engine's panic unwinding does.
	pr, pw := n.ctx.PrivateAccesses()
	ev := pEvent{kind: evUnlock, addr: uint64(id), pc: int32(pc)}
	aux := pAux{pr: pr, pw: pw}
	if n.direct {
		n.pushAux(ev, aux)
		n.flushBuf()
		n.waitAck()
	} else {
		n.pushAux(ev, aux)
	}
	n.lockDepth--
	if n.lockDepth == 0 {
		n.direct = false
	}
}

func (n *specNode) Work(node int, cycles uint64) {
	if n.direct {
		n.sync(pEvent{kind: evWork, a: cycles})
		return
	}
	if len(n.buf) >= specBatch {
		n.flushBuf()
	}
	n.buf = append(n.buf, pEvent{kind: evWork, a: cycles})
}

func (n *specNode) Print(node int, text string) {
	ev := pEvent{kind: evPrint}
	aux := pAux{text: text}
	if n.direct {
		n.pushAux(ev, aux)
		n.flushBuf()
		n.waitAck()
		return
	}
	n.pushAux(ev, aux)
}
