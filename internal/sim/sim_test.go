package sim

import (
	"strings"
	"testing"

	"cachier/internal/interp"
	"cachier/internal/parc"
	"cachier/internal/trace"
)

func cfg4() Config {
	c := DefaultConfig()
	c.Nodes = 4
	return c
}

func runSrc(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func load(t *testing.T, res *Result, name string, ix ...int) interp.Value {
	t.Helper()
	addr, err := res.Layout.AddrOf(name, ix...)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Layout.Region(name)
	return interp.FromBits(res.Store.Load(addr), r.Base == 1 /* memory.Float */)
}

func TestSPMDExecutionAllNodes(t *testing.T) {
	res := runSrc(t, `
shared int out[4];
func main() {
    out[pid()] = pid() + 10;
}
`, cfg4())
	for i := 0; i < 4; i++ {
		if got := load(t, res, "out", i).AsInt(); got != int64(i+10) {
			t.Errorf("out[%d] = %d", i, got)
		}
	}
	if res.Cycles == 0 {
		t.Error("zero execution time")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	// Node 0 does much more work before the barrier; after it, all nodes
	// proceed from the same release time, so completion clocks are close.
	res := runSrc(t, `
shared int sink[4];
func main() {
    if pid() == 0 {
        var acc int = 0;
        for i = 0 to 20000 { acc += i; }
        sink[0] = acc;
    }
    barrier;
    sink[pid()] = pid();
}
`, cfg4())
	if res.Barriers != 1 {
		t.Fatalf("barriers = %d", res.Barriers)
	}
	minC, maxC := res.NodeCycles[0], res.NodeCycles[0]
	for _, c := range res.NodeCycles {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 5000 {
		t.Errorf("clocks diverge after barrier: min %d max %d", minC, maxC)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
shared float A[64];
shared int turn;
func main() {
    for i = 0 to 63 {
        if i % nprocs() == pid() {
            A[i] = float(i) * 1.5;
        }
    }
    barrier;
    var s float = 0.0;
    for i = 0 to 63 { s += A[i]; }
    lock(0);
    A[0] += s * 0.000001;
    unlock(0);
    barrier;
}
`
	prog := parc.MustParse(src)
	r1, err := Run(prog, cfg4())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(parc.MustParse(src), cfg4())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Stats != r2.Stats {
		t.Errorf("stats differ:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Concurrent increments under a lock must not lose updates.
	res := runSrc(t, `
shared int counter;
func main() {
    for i = 0 to 24 {
        lock(1);
        counter += 1;
        unlock(1);
    }
}
`, cfg4())
	if got := load(t, res, "counter").AsInt(); got != 100 {
		t.Errorf("counter = %d, want 100", got)
	}
}

func TestUnlockWithoutHoldFails(t *testing.T) {
	prog := parc.MustParse(`func main() { unlock(0); }`)
	if _, err := Run(prog, cfg4()); err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("err = %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Node 0 never reaches the barrier (holds the lock everyone wants is
	// not expressible without progress, so use a conditional barrier).
	prog := parc.MustParse(`
func main() {
    if pid() != 0 {
        barrier;
    }
    if pid() == 0 {
        lock(0);
        lock(0);
    }
}
`)
	_, err := Run(prog, cfg4())
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v", err)
	}
}

func TestRuntimeErrorPropagates(t *testing.T) {
	prog := parc.MustParse(`
shared int a[4];
func main() {
    a[pid() * 2] = 1;
}
`)
	_, err := Run(prog, cfg4())
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestEarlyExitDoesNotHangBarrier(t *testing.T) {
	// Node 3 exits without the barrier; the machine treats finished nodes
	// as arrived so the rest make progress.
	res := runSrc(t, `
shared int out[4];
func main() {
    if pid() == 3 {
        out[3] = 3;
    } else {
        barrier;
        out[pid()] = pid();
    }
}
`, cfg4())
	for i := 0; i < 4; i++ {
		if got := load(t, res, "out", i).AsInt(); got != int64(i) {
			t.Errorf("out[%d] = %d", i, got)
		}
	}
}

func TestTraceModeRecordsMissesAndEpochs(t *testing.T) {
	cfg := cfg4()
	cfg.Mode = ModeTrace
	res := runSrc(t, `
shared float A[32] label "A";
func main() {
    A[pid() * 8] = 1.0;
    barrier;
    A[((pid() + 1) % nprocs()) * 8] += 1.0;
}
`, cfg)
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace in trace mode")
	}
	if len(tr.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(tr.Epochs))
	}
	if tr.Epochs[0].BarrierPC < 0 {
		t.Error("mid-program epoch has final barrier PC")
	}
	if tr.Epochs[1].BarrierPC != -1 {
		t.Errorf("final epoch barrier PC = %d", tr.Epochs[1].BarrierPC)
	}
	// Epoch 0: each node write-misses its own element.
	wm := 0
	for _, m := range tr.Epochs[0].Misses {
		if m.Kind == trace.WriteMiss {
			wm++
		}
	}
	if wm != 4 {
		t.Errorf("epoch 0 write misses = %d, want 4", wm)
	}
	// Epoch 1: caches were flushed, so the += produces a read miss then a
	// write fault per node (same block, read before write).
	var rm, wf int
	for _, m := range tr.Epochs[1].Misses {
		switch m.Kind {
		case trace.ReadMiss:
			rm++
		case trace.WriteFault:
			wf++
		}
	}
	if rm != 4 || wf != 4 {
		t.Errorf("epoch 1: read misses %d write faults %d, want 4 and 4", rm, wf)
	}
	// Labels carried through.
	if len(tr.Labels) != 1 || tr.Labels[0].Name != "A" {
		t.Errorf("labels = %+v", tr.Labels)
	}
	// VTs are non-decreasing across epochs.
	for n := 0; n < 4; n++ {
		if tr.Epochs[1].VT[n] < tr.Epochs[0].VT[n] {
			t.Errorf("node %d VT decreased", n)
		}
	}
}

func TestDirectivesIgnoredInTraceMode(t *testing.T) {
	cfg := cfg4()
	cfg.Mode = ModeTrace
	res := runSrc(t, `
shared float A[32];
func main() {
    check_out_x A[0:31];
    A[pid()] = 1.0;
    check_in A[0:31];
}
`, cfg)
	if res.Stats.CheckOutX != 0 || res.Stats.CheckIns != 0 {
		t.Errorf("directives executed in trace mode: %+v", res.Stats)
	}
}

func TestCheckOutXDirectiveAvoidsUpgrades(t *testing.T) {
	base := runSrc(t, `
shared float A[32];
func main() {
    var x float;
    x = A[pid() * 8];
    A[pid() * 8] = x + 1.0;
}
`, cfg4())
	if base.Stats.WriteFaults == 0 {
		t.Fatal("baseline has no write faults")
	}
	ann := runSrc(t, `
shared float A[32];
func main() {
    check_out_x A[pid() * 8];
    var x float;
    x = A[pid() * 8];
    A[pid() * 8] = x + 1.0;
}
`, cfg4())
	if ann.Stats.WriteFaults != 0 {
		t.Errorf("annotated run still has %d write faults", ann.Stats.WriteFaults)
	}
}

func TestPrefetchDisableFlag(t *testing.T) {
	src := `
shared float A[32];
func main() {
    prefetch_s A[pid() * 8];
    var acc float = 0.0;
    for i = 0 to 200 { acc += float(i); }
    A[pid() * 8] = acc;
}
`
	on := runSrc(t, src, cfg4())
	cfg := cfg4()
	cfg.DisablePrefetch = true
	off := runSrc(t, src, cfg)
	if on.Stats.PrefetchS == 0 {
		t.Error("prefetch not executed when enabled")
	}
	if off.Stats.PrefetchS != 0 {
		t.Error("prefetch executed when disabled")
	}
}

func TestSharingDegree(t *testing.T) {
	res := runSrc(t, `
shared float A[64];
func main() {
    var buf float[64];
    for i = 0 to 63 { buf[i] = float(i); }     // private stores
    for i = 0 to 63 { A[i] = buf[i] + 1.0; }   // shared stores, private loads
    barrier;
    var s float = 0.0;
    for i = 0 to 63 { s += A[i]; }             // shared loads
    A[pid()] = s;
}
`, cfg4())
	loads, stores := res.SharingDegree()
	if loads <= 0 || loads >= 1 || stores <= 0 || stores >= 1 {
		t.Errorf("sharing degree out of range: loads %g stores %g", loads, stores)
	}
	// Shared loads (64/node) equal private loads (64/node): expect ~0.5.
	if loads < 0.4 || loads > 0.6 {
		t.Errorf("load sharing degree = %g, want ~0.5", loads)
	}
}

func TestOutputOrderingDeterministic(t *testing.T) {
	src := `
func main() {
    print("hello from %d", pid());
}
`
	r1 := runSrc(t, src, cfg4())
	r2 := runSrc(t, src, cfg4())
	if len(r1.Output) != 4 {
		t.Fatalf("output = %v", r1.Output)
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Errorf("output order differs at %d: %q vs %q", i, r1.Output[i], r2.Output[i])
		}
	}
}

func TestSingleNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	res := runSrc(t, `
shared int x;
func main() {
    x = 41;
    barrier;
    x += 1;
}
`, cfg)
	if got := load(t, res, "x").AsInt(); got != 42 {
		t.Errorf("x = %d", got)
	}
	if res.Barriers != 1 {
		t.Errorf("barriers = %d", res.Barriers)
	}
}

func TestQuantumDoesNotChangeSemantics(t *testing.T) {
	src := `
shared float A[128];
func main() {
    for i = 0 to 127 {
        if i % nprocs() == pid() { A[i] = float(i); }
    }
    barrier;
    var s float = 0.0;
    for i = 0 to 127 { s += A[i]; }
    if pid() == 0 { A[0] = s; }
}
`
	want := 0.0
	for i := 1; i < 128; i++ {
		want += float64(i)
	}
	for _, q := range []uint64{1, 100, 10_000} {
		cfg := cfg4()
		cfg.Quantum = q
		res := runSrc(t, src, cfg)
		if got := load(t, res, "A", 0).AsFloat(); got != want {
			t.Errorf("quantum %d: A[0] = %g, want %g", q, got, want)
		}
	}
}
