// Package sim is the reproduction's Wisconsin Wind Tunnel: an
// execution-driven simulator that runs a ParC program on P simulated
// processors over the Dir1SW memory system. Like WWT it uses virtual
// prototyping — local computation is charged to a node's virtual clock
// without detailed simulation, and only shared-memory events are modelled in
// detail (paper Section 3.2).
//
// Scheduling is deterministic: exactly one processor executes at a time, and
// control passes to the runnable processor with the smallest virtual clock
// (ties broken by processor ID) whenever the running processor gets more
// than one scheduling quantum ahead. Identical inputs therefore produce
// identical traces, statistics, and execution times.
//
// Internally the runnable set is a min-heap keyed by (clock, processor ID),
// and the running processor batches cycles — local work and plain cache
// hits — against a cached quantum limit, touching the scheduler only when
// the quantum is exceeded or a protocol-visible event (miss, directive,
// barrier, lock, print) forces a scheduling decision. Both are pure
// optimizations: the schedule, and therefore every simulated result, is
// bit-identical to the original linear-scan scheduler's.
//
// In trace mode the simulator additionally flushes every node's shared-data
// cache at each barrier and records all misses, producing the paper's
// Figure 3 trace for Cachier; CICO annotations are ignored so the trace
// reflects the unannotated program.
package sim

import (
	"errors"
	"fmt"

	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
	"cachier/internal/dirn"
	"cachier/internal/interp"
	"cachier/internal/memory"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/trace"
)

// Mode selects the simulator's purpose.
type Mode int

// Simulation modes.
const (
	// ModePerf runs the program with CICO statements executed as Dir1SW
	// directives and reports execution time and protocol statistics.
	ModePerf Mode = iota
	// ModeTrace runs the (unannotated) program with barrier cache flushes
	// and records the miss trace for Cachier; CICO statements are ignored.
	ModeTrace
)

// Config configures a simulation run.
type Config struct {
	Nodes     int
	CacheSize int
	Assoc     int
	BlockSize int
	Costs     dir1sw.Costs
	Mode      Mode

	// Quantum is how many cycles the running processor may get ahead of the
	// minimum runnable clock before yielding; WWT used the network latency.
	Quantum uint64

	// BarrierBase and BarrierPerNode model barrier synchronization cost:
	// all nodes leave the barrier at max(arrival) + BarrierBase +
	// BarrierPerNode*log2(Nodes).
	BarrierBase    uint64
	BarrierPerNode uint64

	// LockAcquire is the cost of an uncontended lock acquire or release;
	// LockTransfer is the extra handoff cost to a waiting node.
	LockAcquire  uint64
	LockTransfer uint64

	// IgnoreDirectives disables CICO statements (used for the unannotated
	// baseline and implied by ModeTrace).
	IgnoreDirectives bool

	// DisablePrefetch ignores prefetch_x/prefetch_s while still honouring
	// check-out/check-in, enabling the paper's with/without-prefetch
	// comparison on the same source.
	DisablePrefetch bool

	// SelfCheck validates the protocol's coherence invariants at every
	// barrier (single writer, directory/cache agreement); a violation
	// aborts the run. Cheap relative to simulation; on by default.
	SelfCheck bool

	// PostStore enables the KSR-1-style post-store semantics for check-ins
	// of dirty blocks (see dir1sw.Config.PostStore).
	PostStore bool

	// FullMap swaps Dir1SW for a full-map hardware directory (see
	// dir1sw.Protocol); used by the protocol-sensitivity ablation. Only
	// meaningful with the Dir1SW protocol.
	FullMap bool

	// Protocol selects the coherence protocol by spec string (see
	// coherence.ParseSpec): "dir1sw" (the default for ""), "dirnnb[:n]"
	// (n-pointer, broadcast-free), or "dirnb[:n]" (n-pointer, broadcast on
	// overflow). FullMap and PostStore are Dir1SW-specific and reject any
	// other protocol.
	Protocol string

	// Probe enables the Dir1SW per-access invariant probe
	// (dir1sw.Config.Probe): every access and directive re-validates the
	// coherence invariants on the blocks it touched, and the first
	// violation fails the run at the next barrier (or at completion).
	// O(nodes) per access — for conformance testing, not performance runs.
	Probe bool

	// Recorder, when non-nil, receives the run's structured metrics (see
	// internal/obs): per-node per-epoch access and trap counts, directory
	// transitions, directive tallies, and optionally a timeline (call
	// EnableTimeline before Run). Recording never changes simulated
	// results; nil disables it at the cost of a branch per event.
	Recorder *obs.Recorder

	// TreeWalk forces the interpreter's tree-walking reference
	// implementation instead of the bytecode VM. The two are maintained to
	// produce identical Machine call sequences; the conformance harness
	// runs both and compares, and this switch is how it (or a suspicious
	// user) pins the reference path.
	TreeWalk bool

	// Parallel selects the epoch-parallel engine (see parallel.go): node
	// interpreters run speculatively on real goroutines and their protocol
	// events are committed by a single merge goroutine in the exact order
	// the sequential scheduler produces, so every simulated result — cycles,
	// stats, output, Snapshot, timeline — is bit-identical to Parallel == 0.
	// The value caps how many node interpreters execute concurrently;
	// ParallelAuto uses GOMAXPROCS. 0 (the default) runs sequentially. A
	// speculation conflict (a racy program whose cross-node data flow is not
	// lock- or barrier-ordered) falls back to one sequential re-run.
	Parallel int

	// Lanes selects the lane-batched engine (see lanes.go): all node
	// interpreters step as resumable lanes of one goroutine (SoA frame
	// banks, an execution mask, and an epoch bucket for barrier releases
	// instead of heap churn), and the memory system batches same-block
	// access runs (coherence batch.go). Scheduling decisions, and therefore
	// every simulated result — cycles, per-node cycles, stats, memory
	// image, output, Snapshot, timeline — are bit-identical to the
	// sequential engine's. A program the lane stepper cannot run (tree-walk
	// forced, or a function that did not compile) falls back to one
	// sequential run. When combined with Parallel, the epoch producers use
	// the lane interpreter in run-to-completion mode.
	Lanes bool
}

// ParallelAuto sizes Config.Parallel to runtime.GOMAXPROCS(0).
const ParallelAuto = -1

// DefaultConfig is the paper's machine: 32 nodes, 256 KB 4-way caches,
// 32-byte blocks.
func DefaultConfig() Config {
	return Config{
		Nodes:          32,
		CacheSize:      256 * 1024,
		Assoc:          4,
		BlockSize:      32,
		Costs:          dir1sw.DefaultCosts(),
		Quantum:        100,
		BarrierBase:    80,
		BarrierPerNode: 10,
		LockAcquire:    60,
		LockTransfer:   40,
		SelfCheck:      true,
	}
}

// Result reports a completed simulation.
type Result struct {
	// Engine names the execution engine that produced the result:
	// "sequential", "parallel", or "sequential (conflict fallback)" when a
	// Parallel run hit a speculation conflict and was re-run sequentially.
	Engine string

	// Protocol is the coherence protocol's display name ("Dir1SW",
	// "FullMap", "Dir4NB", "Dir4B", ...).
	Protocol string

	Cycles     uint64   // execution time: max node completion clock
	NodeCycles []uint64 // per-node completion clocks
	Stats      dir1sw.Stats
	Trace      *trace.Trace // non-nil in ModeTrace
	Output     []string     // print statements, in schedule order
	Layout     *memory.Layout
	Store      *interp.Store

	// Sharing-degree inputs (paper Section 6 discussion): shared vs private
	// array references per node.
	SharedReads  []uint64
	SharedWrites []uint64
	Barriers     int // completed global barriers

	privReads  uint64 // private-array loads, summed over nodes
	privWrites uint64 // private-array stores, summed over nodes

	// Snapshot is the run's structured stats tree, non-nil iff a Recorder
	// was configured. Per-variable directive tallies (Section 5's
	// restructuring comparison counts check-outs of the result matrix
	// specifically) live in Snapshot.Vars / Recorder.Var.
	Snapshot *obs.Snapshot
}

// SharingDegree returns the fraction of (array) loads and stores that
// touched shared data, aggregated over nodes.
func (r *Result) SharingDegree() (loads, stores float64) {
	var sr, sw uint64
	for i := range r.SharedReads {
		sr += r.SharedReads[i]
		sw += r.SharedWrites[i]
	}
	// Private array accesses are counted by the interpreter contexts and
	// folded in by Run.
	// The two ratios are independent: a program with no stores still has a
	// well-defined load-sharing degree, and vice versa.
	tl := sr + r.privReads
	ts := sw + r.privWrites
	if tl > 0 {
		loads = float64(sr) / float64(tl)
	}
	if ts > 0 {
		stores = float64(sw) / float64(ts)
	}
	return loads, stores
}

type procStatus int

const (
	statusReady procStatus = iota
	statusBarrier
	statusLock
	statusDone
)

type proc struct {
	id      int
	clock   uint64
	status  procStatus
	resume  chan resumeMsg
	arrival uint64 // clock when the proc last blocked at a barrier
}

type resumeMsg struct {
	abort bool
}

var (
	errAborted = errors.New("sim: aborted")
	// errProcFault unwinds a processor whose program committed a machine
	// fault (e.g. unlocking a lock it does not hold); the fault is recorded
	// in runErr at the raise site and the processor terminates cleanly.
	errProcFault = errors.New("sim: processor fault")
)

type lockState struct {
	held    bool
	owner   int
	waiters []int // FIFO
}

// Machine implements interp.Machine and owns all simulation state.
//
// Single-owner invariant: a Machine belongs to exactly one Run call. Within
// a run, the proc goroutines and the coordinator hand execution off through
// channels so that at most one of them is ever active; all mutations happen
// inside that single active goroutine, which is why no field is locked.
// Concurrent simulations (e.g. the parallel bench harness) must each call
// Run and get their own Machine — sharing one across goroutines, or calling
// interp.Machine methods from outside the run's own proc goroutines, is a
// data race.
type Machine struct {
	cfg    Config
	prog   *parc.Program
	layout *memory.Layout
	store  *interp.Store
	sys    *dir1sw.System

	procs            []*proc
	waiting          int // procs blocked at the barrier
	pendingBarrierPC int // barrier statement the current waiters sit at
	done             int
	locks            map[int64]*lockState
	wake             chan struct{} // coordinator wakeup

	// ready holds the parked runnable processors; limit caches
	// ready.min().clock + Quantum (MaxUint64 when the heap is empty) so the
	// running processor's keep-running test is a single compare. The cache is
	// refreshed after every heap mutation.
	ready readyHeap
	limit uint64

	builder  *trace.Builder
	barriers int
	outputs  []string
	runErr   error

	sharedReads  []uint64
	sharedWrites []uint64
	rec          *obs.Recorder // nil when recording is disabled
	blockSz      uint64        // cache block size, for block-number computation

	// par is non-nil when this machine is driven by the epoch-parallel
	// committer (parallel.go) instead of per-processor goroutines; the
	// scheduler seam in yieldSwitch consults it instead of parking.
	par *parEngine

	// lanes is non-nil when this machine is driven by the lane-batched
	// engine (lanes.go): every processor is a resumable lane of one
	// goroutine, context switches retarget which lane Resume steps next,
	// and shared accesses resolve through the memory system's batched path.
	lanes *laneEngine

	added struct {
		privReads  uint64
		privWrites uint64
	}
}

// Run simulates prog under cfg.
func Run(prog *parc.Program, cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sim: need at least one node")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 1
	}
	if cfg.Mode == ModeTrace {
		cfg.IgnoreDirectives = true
	}
	if cfg.Parallel != 0 && cfg.Nodes > 1 {
		res, err, ok := runParallel(prog, cfg)
		if ok {
			return res, err
		}
		// Speculation conflict: the program's cross-node data flow is not
		// ordered by barriers or locks, so the epoch logs cannot commit.
		// Re-run sequentially — the authoritative semantics — after wiping
		// anything the discarded attempt fed the recorder.
		if cfg.Recorder != nil {
			cfg.Recorder.Reset()
		}
		res, err = runSequential(prog, cfg)
		if res != nil {
			res.Engine = engineSeqFallback
		}
		return res, err
	}
	if cfg.Lanes {
		res, err, ok := runLanes(prog, cfg)
		if ok {
			return res, err
		}
		// The lane stepper refused the program (tree-walk forced, or a
		// function fell back to the tree-walking interpreter). Re-run on
		// the sequential engine after wiping anything the abandoned
		// attempt fed the recorder.
		if cfg.Recorder != nil {
			cfg.Recorder.Reset()
		}
		res, err = runSequential(prog, cfg)
		if res != nil {
			res.Engine = engineLanesFallback
		}
		return res, err
	}
	return runSequential(prog, cfg)
}

// Engine names reported in Result.Engine.
const (
	engineSequential    = "sequential"
	engineParallel      = "parallel"
	engineLanes         = "lanes"
	engineSeqFallback   = "sequential (conflict fallback)"
	engineLanesFallback = "sequential (lanes fallback)"
)

// runSequential is the original engine: one goroutine per simulated
// processor, exactly one unparked at a time.
func runSequential(prog *parc.Program, cfg Config) (*Result, error) {
	m, ctxs, err := newMachine(prog, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		go m.runProc(ctxs[i], m.procs[i])
	}

	// Start processor 0 and wait for the machine to finish or fail. All
	// other processors begin parked and runnable at clock 0.
	for i := 1; i < cfg.Nodes; i++ {
		m.ready.push(m.procs[i])
	}
	m.refreshLimit()
	m.procs[0].resume <- resumeMsg{}
	<-m.wake

	// Unblock any still-parked goroutines so they exit.
	for _, p := range m.procs {
		if p.status != statusDone {
			p.resume <- resumeMsg{abort: true}
		}
	}
	res, err := m.buildResult(ctxs)
	if res != nil {
		res.Engine = engineSequential
	}
	return res, err
}

// newMachine builds the simulation state shared by both engines: layout,
// store, memory system, processors, and one interpreter context per node.
func newMachine(prog *parc.Program, cfg Config) (*Machine, []*interp.Context, error) {
	layout, err := memory.New(prog, cfg.BlockSize)
	if err != nil {
		return nil, nil, err
	}
	proto, err := protocolFor(cfg)
	if err != nil {
		return nil, nil, err
	}
	sys, err := coherence.New(coherence.Config{
		Nodes:     cfg.Nodes,
		CacheSize: cfg.CacheSize,
		Assoc:     cfg.Assoc,
		BlockSize: cfg.BlockSize,
		Costs:     cfg.Costs,
		PostStore: cfg.PostStore,
		AddrSpace: layout.TotalBytes(),
		Probe:     cfg.Probe,
		Recorder:  cfg.Recorder,
	}, proto)
	if err != nil {
		return nil, nil, err
	}
	m := &Machine{
		cfg:          cfg,
		prog:         prog,
		layout:       layout,
		store:        interp.NewStore(layout.TotalBytes()),
		sys:          sys,
		locks:        make(map[int64]*lockState),
		wake:         make(chan struct{}, 1),
		sharedReads:  make([]uint64, cfg.Nodes),
		sharedWrites: make([]uint64, cfg.Nodes),
		rec:          cfg.Recorder,
		blockSz:      uint64(cfg.BlockSize),
	}
	if cfg.Mode == ModeTrace {
		m.builder = trace.NewBuilder(cfg.Nodes, cfg.BlockSize, labelsFromLayout(layout))
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.procs = append(m.procs, &proc{id: i, resume: make(chan resumeMsg)})
	}

	ctxs := make([]*interp.Context, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ctxs[i] = interp.NewContext(prog, m.store, m, i, cfg.Nodes)
		if cfg.TreeWalk {
			ctxs[i].UseTreeWalker()
		}
		ctxs[i].CountOps(cfg.Recorder != nil)
	}
	return m, ctxs, nil
}

// protocolFor resolves Config.Protocol (plus the Dir1SW-specific FullMap
// and PostStore switches) into a coherence.Protocol.
func protocolFor(cfg Config) (coherence.Protocol, error) {
	spec, err := coherence.ParseSpec(cfg.Protocol)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if spec.Name != coherence.SpecDir1SW {
		if cfg.FullMap {
			return nil, fmt.Errorf("sim: FullMap is a Dir1SW ablation; protocol %q already has hardware pointers", spec)
		}
		if cfg.PostStore {
			return nil, fmt.Errorf("sim: PostStore refills past holders behind the pointer directory and is only modelled for Dir1SW, not %q", spec)
		}
	}
	switch spec.Name {
	case coherence.SpecDirnNB:
		return dirn.NB(spec.N), nil
	case coherence.SpecDirnB:
		return dirn.B(spec.N), nil
	default:
		return dir1sw.Protocol(cfg.FullMap), nil
	}
}

// buildResult is the shared run epilogue: surface run errors, validate the
// protocol probe, and assemble the Result (stats, snapshot, trace).
func (m *Machine) buildResult(ctxs []*interp.Context) (*Result, error) {
	cfg := m.cfg
	sys := m.sys
	if m.runErr != nil {
		return nil, m.runErr
	}
	if err := sys.ProbeError(); err != nil {
		return nil, fmt.Errorf("sim: invariant violation: %w", err)
	}

	res := &Result{
		Protocol:     sys.Protocol().Name(),
		NodeCycles:   make([]uint64, cfg.Nodes),
		Stats:        sys.Stats,
		Output:       m.outputs,
		Layout:       m.layout,
		Store:        m.store,
		SharedReads:  m.sharedReads,
		SharedWrites: m.sharedWrites,
		Barriers:     m.barriers,
		privReads:    m.added.privReads,
		privWrites:   m.added.privWrites,
	}
	for i, p := range m.procs {
		res.NodeCycles[i] = p.clock
		if p.clock > res.Cycles {
			res.Cycles = p.clock
		}
	}
	if m.rec != nil {
		m.rec.Finish(res.NodeCycles)
		for i, ctx := range ctxs {
			m.rec.SetOps(i, ctx.OpsDispatched())
		}
		res.Snapshot = m.rec.Snapshot(res.Cycles, res.NodeCycles, m.barriers, sys.Stats.Protocol())
		res.Snapshot.ProtocolName = res.Protocol
	}
	if m.builder != nil {
		vts := make([]uint64, cfg.Nodes)
		for i, p := range m.procs {
			vts[i] = p.clock
		}
		m.builder.EndEpoch(-1, vts, true)
		tr := m.builder.Trace()
		tr.SortMisses()
		res.Trace = tr
	}
	return res, nil
}

func labelsFromLayout(l *memory.Layout) []trace.Label {
	var out []trace.Label
	for _, r := range l.Regions {
		out = append(out, trace.Label{
			Name: r.Label,
			Base: r.BaseAddr,
			Elem: parc.ElemSize,
			Dims: append([]int(nil), r.DimSizes...),
		})
	}
	return out
}

// runProc is each processor's goroutine body.
func (m *Machine) runProc(ctx *interp.Context, p *proc) {
	if msg := <-p.resume; msg.abort {
		return
	}
	err := m.runInterp(ctx)
	if errors.Is(err, errAborted) {
		return // coordinator shut us down mid-run; touch nothing
	}
	pr, pw := ctx.PrivateAccesses()
	m.finishProc(p, err, pr, pw)
}

// finishProc retires a completed (or faulted) processor: folds its private
// access counters into the machine, records completion, surfaces its error,
// releases a barrier it was the last straggler for, and yields its place in
// the schedule. Both engines terminate processors through this path.
func (m *Machine) finishProc(p *proc, err error, privReads, privWrites uint64) {
	m.added.privReads += privReads
	m.added.privWrites += privWrites
	p.status = statusDone
	if m.lanes != nil {
		m.lanes.mask.Remove(p.id)
	}
	m.rec.NodeDone(p.id, p.clock)
	m.done++
	if err != nil && m.runErr == nil && !errors.Is(err, errProcFault) {
		m.runErr = err
	}
	// A finishing processor may be the last thing a barrier was waiting on.
	if m.waiting > 0 && m.waiting == m.activeProcs() {
		m.releaseBarrier(m.pendingBarrierPC, p.id)
	}
	m.yield(p)
}

// runInterp executes the processor's program, converting the machine's
// control panics (abort, processor fault) back into errors.
func (m *Machine) runInterp(ctx *interp.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && (errors.Is(e, errAborted) || errors.Is(e, errProcFault)) {
				err = e
				return
			}
			panic(r)
		}
	}()
	return ctx.Run()
}

// park blocks the calling proc until resumed, aborting via panic if the
// coordinator is shutting down.
func (m *Machine) park(p *proc) {
	if msg := <-p.resume; msg.abort {
		panic(errAborted)
	}
}

// yield hands control to the runnable processor with the smallest clock. If
// the caller remains the best choice (within the quantum) it simply returns.
// When nothing is runnable it wakes the coordinator (completion or
// deadlock).
//
// The fast path is the cycle batch that lets plain cache hits and local Work
// stay on the running goroutine: while the caller's clock is within the
// cached limit (smallest parked runnable clock + quantum) no scheduler state
// is touched at all — the accumulated cycles are only reconciled against the
// heap when the quantum is exceeded or the caller blocks. The decision
// points and their outcomes are identical to the original O(P) scan: the
// scan kept the caller running iff its clock was within one quantum of the
// smallest runnable clock, which is exactly what limit encodes.
func (m *Machine) yield(p *proc) {
	if p.status == statusReady && p.clock <= m.limit {
		return // keep running
	}
	m.yieldSwitch(p)
}

// refreshLimit recomputes the running processor's keep-running bound after a
// heap mutation. On the lane engine the barrier-release bucket also holds
// runnable processors, so the bound covers it too.
func (m *Machine) refreshLimit() {
	lo := ^uint64(0)
	if m.ready.len() > 0 {
		lo = m.ready.min().clock
	}
	if m.lanes != nil && m.lanes.bucketLen > 0 && m.lanes.bucketClock < lo {
		lo = m.lanes.bucketClock
	}
	if lo == ^uint64(0) {
		m.limit = lo
	} else {
		m.limit = lo + m.cfg.Quantum
	}
}

// yieldSwitch is yield's slow path: hand off to the heap minimum, or wake
// the coordinator when nothing is runnable.
func (m *Machine) yieldSwitch(p *proc) {
	if m.lanes != nil {
		m.lanes.laneSwitch(p)
		return
	}
	if m.ready.len() == 0 {
		// Nothing else is runnable, and the caller cannot continue (a
		// runnable caller would have taken the fast path, since an empty
		// heap leaves the limit unbounded): the program completed, or every
		// remaining node is blocked (deadlock).
		if m.done < len(m.procs) && m.runErr == nil {
			m.runErr = fmt.Errorf("sim: deadlock: %d of %d nodes blocked (barrier waiters: %d)",
				len(m.procs)-m.done, len(m.procs), m.waiting)
		}
		if m.par != nil {
			m.par.halt = true
			return
		}
		m.wake <- struct{}{}
		if p.status != statusDone {
			m.park(p) // blocks until the coordinator aborts us
		}
		return
	}
	q := m.ready.min()
	m.rec.Handoff()
	if p.status == statusReady {
		// The common handoff: the caller stays runnable, so it takes the
		// popped minimum's slot directly (one sift-down instead of
		// pop+push), and the new limit is read off the root without the
		// empty-heap test refreshLimit would repeat.
		m.ready.replaceMin(p)
		m.limit = m.ready.min().clock + m.cfg.Quantum
	} else {
		m.ready.pop()
		m.refreshLimit()
	}
	if m.par != nil {
		// Epoch-parallel commit: the single committer goroutine drives every
		// processor, so a context switch is just retargeting which event
		// stream it consumes next — no parking, no channel handoff.
		m.par.cur = q
		return
	}
	// Decide our own fate BEFORE waking the next processor: after the send,
	// the woken chain runs concurrently with us and may mutate our status
	// (a barrier release flipping us back to ready), so reading it past the
	// handoff would race. A done processor never changes status again.
	amDone := p.status == statusDone
	q.resume <- resumeMsg{}
	if amDone {
		return
	}
	m.park(p)
}

// --- interp.Machine implementation ---

// Access implements interp.Machine.
func (m *Machine) Access(node int, write bool, addr uint64, pc int) {
	p := m.procs[node]
	var r dir1sw.Result
	if write {
		m.sharedWrites[node]++
		if m.lanes != nil {
			r = m.sys.WriteFast(node, addr, p.clock)
		} else {
			r = m.sys.Write(node, addr, p.clock)
		}
	} else {
		m.sharedReads[node]++
		if m.lanes != nil {
			r = m.sys.ReadFast(node, addr, p.clock)
		} else {
			r = m.sys.Read(node, addr, p.clock)
		}
	}
	p.clock += r.Cycles
	if m.builder != nil && r.Kind != dir1sw.Hit {
		m.builder.AddMiss(missKind(r.Kind), addr, pc, node)
	}
	if m.rec != nil {
		m.rec.Access(node, obsAccessKind(r.Kind), addr/m.blockSz, r.Cycles, r.Trap, p.clock)
	}
	m.yield(p)
}

func obsAccessKind(k dir1sw.AccessKind) obs.AccessKind {
	switch k {
	case dir1sw.Hit:
		return obs.Hit
	case dir1sw.ReadMiss:
		return obs.ReadMiss
	case dir1sw.WriteMiss:
		return obs.WriteMiss
	default:
		return obs.WriteFault
	}
}

func missKind(k dir1sw.AccessKind) trace.Kind {
	switch k {
	case dir1sw.ReadMiss:
		return trace.ReadMiss
	case dir1sw.WriteMiss:
		return trace.WriteMiss
	default:
		return trace.WriteFault
	}
}

// Directive implements interp.Machine: CICO statements become Dir1SW
// directives, applied per cache block of the target ranges.
func (m *Machine) Directive(node int, kind parc.AnnKind, ranges []interp.AddrRange, pc int) {
	p := m.procs[node]
	if m.cfg.IgnoreDirectives {
		m.yield(p)
		return
	}
	if m.cfg.DisablePrefetch && (kind == parc.AnnPrefetchX || kind == parc.AnnPrefetchS) {
		m.yield(p)
		return
	}
	bs := m.blockSz
	for _, ar := range ranges {
		blocks := ar.Hi/bs - ar.Lo/bs + 1
		for b := ar.Lo / bs; b <= ar.Hi/bs; b++ {
			addr := b * bs
			var r dir1sw.Result
			switch kind {
			case parc.AnnCheckOutX:
				r = m.sys.CheckOutX(node, addr, p.clock)
			case parc.AnnCheckOutS:
				r = m.sys.CheckOutS(node, addr, p.clock)
			case parc.AnnCheckIn:
				r = m.sys.CheckIn(node, addr)
			case parc.AnnPrefetchX:
				r = m.sys.Prefetch(node, addr, p.clock, true)
			case parc.AnnPrefetchS:
				r = m.sys.Prefetch(node, addr, p.clock, false)
			}
			p.clock += r.Cycles
			if m.rec != nil && r.Trap {
				m.rec.DirectiveTrap(node, p.clock)
			}
		}
		if m.rec != nil {
			dk := obsDirKind(kind)
			m.rec.Directive(node, dk, blocks, p.clock)
			if reg, _, ok := m.layout.Resolve(ar.Lo); ok {
				m.rec.VarDirective(reg.Name, dk, blocks)
			}
		}
	}
	m.yield(p)
}

func obsDirKind(kind parc.AnnKind) obs.DirKind {
	switch kind {
	case parc.AnnCheckOutX:
		return obs.DirCheckOutX
	case parc.AnnCheckOutS:
		return obs.DirCheckOutS
	case parc.AnnCheckIn:
		return obs.DirCheckIn
	case parc.AnnPrefetchX:
		return obs.DirPrefetchX
	default:
		return obs.DirPrefetchS
	}
}

// Barrier implements interp.Machine.
func (m *Machine) Barrier(node int, pc int) {
	p := m.procs[node]
	p.status = statusBarrier
	p.arrival = p.clock
	if m.lanes != nil {
		m.lanes.mask.Remove(node)
	}
	m.waiting++
	m.pendingBarrierPC = pc
	if m.waiting == m.activeProcs() {
		m.releaseBarrier(pc, p.id)
	}
	m.yield(p)
}

// activeProcs counts processors still participating in barriers.
func (m *Machine) activeProcs() int { return len(m.procs) - m.done }

// releaseBarrier completes a global barrier: synchronizes clocks, flushes
// caches and closes the trace epoch in trace mode. Released processors are
// returned to the ready heap, except the active one (identified by its
// processor ID), whose fate the subsequent yield decides.
func (m *Machine) releaseBarrier(pc int, active int) {
	var maxClock uint64
	for _, q := range m.procs {
		if q.status == statusBarrier && q.arrival > maxClock {
			maxClock = q.arrival
		}
	}
	release := maxClock + m.cfg.BarrierBase + m.cfg.BarrierPerNode*log2(len(m.procs))
	if m.rec != nil {
		arrivals := make([]uint64, len(m.procs))
		for i, q := range m.procs {
			if q.status == statusBarrier {
				arrivals[i] = q.arrival
			} else {
				arrivals[i] = q.clock // already finished
			}
		}
		m.rec.BarrierEnd(pc, arrivals, release)
	}
	if m.builder != nil {
		vts := make([]uint64, len(m.procs))
		for i, q := range m.procs {
			vts[i] = q.arrival
		}
		m.builder.EndEpoch(pc, vts, false)
		for i := range m.procs {
			m.sys.FlushNode(i)
		}
	}
	for _, q := range m.procs {
		if q.status == statusBarrier {
			q.status = statusReady
			q.clock = release
			if m.lanes != nil {
				// Lane engine: released lanes enter the epoch bucket —
				// one shared clock and a node-set instead of per-proc heap
				// pushes. The bucket is empty here: a barrier only releases
				// when every non-done processor is parked at it, and a
				// bucketed lane cannot have reached the barrier without
				// first being scheduled out of the bucket.
				m.lanes.mask.Add(q.id)
				if q.id != active {
					m.lanes.bucket.Add(q.id)
					m.lanes.bucketLen++
					m.lanes.bucketClock = release
				}
			} else if q.id != active {
				m.ready.push(q)
			}
		}
	}
	m.refreshLimit()
	m.waiting = 0
	m.barriers++
	if m.cfg.SelfCheck && m.runErr == nil {
		if err := m.sys.CheckCoherence(); err != nil {
			m.runErr = fmt.Errorf("sim: coherence violation at barrier %d: %w", m.barriers, err)
		}
	}
	if m.runErr == nil {
		if err := m.sys.ProbeError(); err != nil {
			m.runErr = fmt.Errorf("sim: invariant violation by barrier %d: %w", m.barriers, err)
		}
	}
	if m.par != nil {
		// Epoch boundary on the parallel engine: every live producer is
		// blocked on its barrier ack, so this is the one quiescent point
		// where the epoch-start shadow image can absorb the epoch's
		// committed writes before the producers speculate onward.
		m.par.epochRoll()
	}
}

func log2(n int) uint64 {
	var l uint64
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Lock implements interp.Machine.
func (m *Machine) Lock(node int, id int64, pc int) {
	p := m.procs[node]
	ls := m.locks[id]
	if ls == nil {
		ls = &lockState{}
		m.locks[id] = ls
	}
	if !ls.held {
		ls.held = true
		ls.owner = node
		p.clock += m.cfg.LockAcquire
		m.yield(p)
		return
	}
	ls.waiters = append(ls.waiters, node)
	p.status = statusLock
	if m.lanes != nil {
		m.lanes.mask.Remove(node)
	}
	m.yield(p)
}

// Unlock implements interp.Machine.
func (m *Machine) Unlock(node int, id int64, pc int) {
	if err := m.unlockCore(node, id); err != nil {
		if m.lanes != nil {
			// Lane engine: no goroutine to unwind. Mark the lane's stepper
			// done so it never dispatches again and retire the processor —
			// the same terminal state the sequential panic path reaches.
			m.lanes.kill(node)
			return
		}
		// Terminate this processor: unwind its interpreter so it cannot
		// keep executing concurrently with whoever is scheduled next.
		panic(err)
	}
}

// unlockCore releases a lock and hands it to the head waiter. A release of a
// lock the node does not hold is a machine fault: it is recorded in runErr
// and errProcFault is returned so the caller can terminate the processor —
// by panic on the sequential engine, by killing the producer on the parallel
// one.
func (m *Machine) unlockCore(node int, id int64) error {
	p := m.procs[node]
	ls := m.locks[id]
	if ls == nil || !ls.held || ls.owner != node {
		if m.runErr == nil {
			m.runErr = fmt.Errorf("sim: node %d unlocked lock %d it does not hold", node, id)
		}
		return errProcFault
	}
	p.clock += m.cfg.LockAcquire
	if len(ls.waiters) > 0 {
		w := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.owner = w
		q := m.procs[w]
		q.status = statusReady
		if t := p.clock + m.cfg.LockTransfer; t > q.clock {
			q.clock = t
		}
		if m.lanes != nil {
			m.lanes.mask.Add(w)
		}
		m.ready.push(q)
		m.refreshLimit()
	} else {
		ls.held = false
	}
	m.yield(p)
	return nil
}

// Work implements interp.Machine.
func (m *Machine) Work(node int, cycles uint64) {
	p := m.procs[node]
	p.clock += cycles
	m.rec.Work(node, cycles)
	m.yield(p)
}

// Print implements interp.Machine.
func (m *Machine) Print(node int, text string) {
	m.outputs = append(m.outputs, fmt.Sprintf("node %d: %s", node, text))
	m.yield(m.procs[node])
}
