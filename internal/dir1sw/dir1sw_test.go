package dir1sw

import "testing"

// The protocol-independent machinery's behavioural tests live in
// internal/coherence (driven through this protocol); this file pins what is
// Dir1SW's own — the exact trap costs, the broadcast-on-imprecision message
// accounting, and the full-map ablation.

func TestExactStallCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	s := MustNew(cfg)
	co := cfg.Costs

	// Clean read miss.
	if r := s.Read(0, 64, 0); r.Cycles != co.CleanMiss() {
		t.Errorf("read miss = %d, want %d", r.Cycles, co.CleanMiss())
	}
	// Hit.
	if r := s.Read(0, 64, 1); r.Cycles != co.CacheHit {
		t.Errorf("hit = %d", r.Cycles)
	}
	// Sole-sharer upgrade: hardware pointer check, no trap.
	if r := s.Write(0, 64, 2); r.Cycles != co.Upgrade() || r.Trap {
		t.Errorf("sole upgrade = %+v", r)
	}
	// Upgrade with another sharer: trap + broadcast to Nodes-1.
	s2 := MustNew(cfg)
	s2.Read(0, 64, 0)
	s2.Read(1, 64, 0)
	want := co.Trap + co.Upgrade() + uint64(cfg.Nodes-1)*co.InvalMsg
	if r := s2.Write(0, 64, 1); r.Cycles != want || !r.Trap {
		t.Errorf("broadcast upgrade = %+v, want %d cycles", r, want)
	}
	// Steal from a remote exclusive owner: trap + 4 hops + service + memory.
	s3 := MustNew(cfg)
	s3.Write(0, 64, 0)
	want = co.Trap + 4*co.NetHop + co.DirService + co.MemAccess
	if r := s3.Read(1, 64, 1); r.Cycles != want || !r.Trap {
		t.Errorf("remote-exclusive read = %+v, want %d cycles", r, want)
	}
	// Check-in of a clean shared block: directive overhead only.
	s4 := MustNew(cfg)
	s4.Read(0, 64, 0)
	if r := s4.CheckIn(0, 64); r.Cycles != co.DirectiveOverhead {
		t.Errorf("clean check-in = %d", r.Cycles)
	}
	// Check-in of a dirty block adds the local writeback push.
	s5 := MustNew(cfg)
	s5.Write(0, 64, 0)
	if r := s5.CheckIn(0, 64); r.Cycles != co.DirectiveOverhead+co.WritebackLocal {
		t.Errorf("dirty check-in = %d", r.Cycles)
	}
}

func TestBroadcastCountsControlMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.CacheSize = 1024
	s := MustNew(cfg)
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	before := s.Stats.CtlMsgs
	s.Write(0, 64, 1)
	// Broadcast: invalidations + acks to every other node, even though only
	// one actually held a copy (Dir1SW's counter does not say who).
	if got := s.Stats.CtlMsgs - before; got != 2*uint64(cfg.Nodes-1) {
		t.Errorf("broadcast control messages = %d, want %d", got, 2*(cfg.Nodes-1))
	}
	if s.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (only the real sharer)", s.Stats.Invalidations)
	}
}

func TestProtocolNames(t *testing.T) {
	if got := Protocol(false).Name(); got != "Dir1SW" {
		t.Errorf("Name = %q", got)
	}
	if got := Protocol(true).Name(); got != "FullMap" {
		t.Errorf("full-map Name = %q", got)
	}
}

func TestFullMapNeverTraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.CacheSize = 1024
	cfg.FullMap = true
	s := MustNew(cfg)
	// Every conflicting transition that traps under Dir1SW.
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	if r := s.Write(0, 64, 1); r.Trap {
		t.Error("full-map write to shared block trapped")
	}
	if r := s.Read(3, 64, 2); r.Trap {
		t.Error("full-map read of remote-exclusive trapped")
	}
	s.Write(4, 96, 0)
	if r := s.Write(5, 96, 1); r.Trap {
		t.Error("full-map write steal trapped")
	}
	if s.Stats.Traps != 0 {
		t.Errorf("traps = %d", s.Stats.Traps)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestFullMapDirectedInvalidations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 16
	cfg.CacheSize = 1024
	cfg.FullMap = true
	s := MustNew(cfg)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	before := s.Stats.CtlMsgs
	s.Write(0, 64, 1)
	// Directed: 2 invalidations + 2 acks, not 2*(N-1) broadcast messages.
	if got := s.Stats.CtlMsgs - before; got != 4 {
		t.Errorf("control messages = %d, want 4 (directed)", got)
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d", s.Stats.Invalidations)
	}
}

func TestFullMapUpgradeCheaperThanDir1SW(t *testing.T) {
	run := func(fullMap bool) uint64 {
		cfg := DefaultConfig()
		cfg.Nodes = 32
		cfg.CacheSize = 1024
		cfg.FullMap = fullMap
		s := MustNew(cfg)
		for n := 1; n < 8; n++ {
			s.Read(n, 64, 0)
		}
		r := s.Write(0, 64, 1)
		return r.Cycles
	}
	if fm, d1 := run(true), run(false); fm >= d1 {
		t.Errorf("full-map upgrade (%d) not cheaper than Dir1SW broadcast (%d)", fm, d1)
	}
}
