package dir1sw

import "testing"

// TestCostArithmetic pins the model's composite latencies to their
// definitions, so cost-model changes are deliberate.
func TestCostArithmetic(t *testing.T) {
	c := Costs{NetHop: 25, DirService: 10, MemAccess: 20, Trap: 250, InvalMsg: 8}
	if got := c.cleanMiss(); got != 2*25+10+20 {
		t.Errorf("cleanMiss = %d", got)
	}
	if got := c.upgrade(); got != 2*25+10 {
		t.Errorf("upgrade = %d", got)
	}
}

func TestExactStallCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	s := MustNew(cfg)
	co := cfg.Costs

	// Clean read miss.
	if r := s.Read(0, 64, 0); r.Cycles != co.cleanMiss() {
		t.Errorf("read miss = %d, want %d", r.Cycles, co.cleanMiss())
	}
	// Hit.
	if r := s.Read(0, 64, 1); r.Cycles != co.CacheHit {
		t.Errorf("hit = %d", r.Cycles)
	}
	// Sole-sharer upgrade: hardware pointer check, no trap.
	if r := s.Write(0, 64, 2); r.Cycles != co.upgrade() || r.Trap {
		t.Errorf("sole upgrade = %+v", r)
	}
	// Upgrade with another sharer: trap + broadcast to Nodes-1.
	s2 := MustNew(cfg)
	s2.Read(0, 64, 0)
	s2.Read(1, 64, 0)
	want := co.Trap + co.upgrade() + uint64(cfg.Nodes-1)*co.InvalMsg
	if r := s2.Write(0, 64, 1); r.Cycles != want || !r.Trap {
		t.Errorf("broadcast upgrade = %+v, want %d cycles", r, want)
	}
	// Steal from a remote exclusive owner: trap + 4 hops + service + memory.
	s3 := MustNew(cfg)
	s3.Write(0, 64, 0)
	want = co.Trap + 4*co.NetHop + co.DirService + co.MemAccess
	if r := s3.Read(1, 64, 1); r.Cycles != want || !r.Trap {
		t.Errorf("remote-exclusive read = %+v, want %d cycles", r, want)
	}
	// Check-in of a clean shared block: directive overhead only.
	s4 := MustNew(cfg)
	s4.Read(0, 64, 0)
	if r := s4.CheckIn(0, 64); r.Cycles != co.DirectiveOverhead {
		t.Errorf("clean check-in = %d", r.Cycles)
	}
	// Check-in of a dirty block adds the local writeback push.
	s5 := MustNew(cfg)
	s5.Write(0, 64, 0)
	if r := s5.CheckIn(0, 64); r.Cycles != co.DirectiveOverhead+co.WritebackLocal {
		t.Errorf("dirty check-in = %d", r.Cycles)
	}
}

func TestBroadcastCountsControlMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.CacheSize = 1024
	s := MustNew(cfg)
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	before := s.Stats.CtlMsgs
	s.Write(0, 64, 1)
	// Broadcast: invalidations + acks to every other node, even though only
	// one actually held a copy (Dir1SW's counter does not say who).
	if got := s.Stats.CtlMsgs - before; got != 2*uint64(cfg.Nodes-1) {
		t.Errorf("broadcast control messages = %d, want %d", got, 2*(cfg.Nodes-1))
	}
	if s.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (only the real sharer)", s.Stats.Invalidations)
	}
}

func TestStatsAggregates(t *testing.T) {
	s := Stats{ReqMsgs: 3, DataMsgs: 4, CtlMsgs: 5, ReadMisses: 1, WriteMisses: 2, WriteFaults: 3}
	if s.TotalMsgs() != 12 {
		t.Errorf("TotalMsgs = %d", s.TotalMsgs())
	}
	if s.Misses() != 6 {
		t.Errorf("Misses = %d", s.Misses())
	}
}

func TestAccessKindStrings(t *testing.T) {
	for k, want := range map[AccessKind]string{
		Hit: "hit", ReadMiss: "read-miss", WriteMiss: "write-miss", WriteFault: "write-fault",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", int(k), k.String(), want)
		}
	}
}
