package dir1sw

import (
	"math/rand"
	"testing"
)

// TestCoherenceRandomDirectiveStorm drives the protocol with long random
// sequences of every operation (including explicit check-outs consuming
// in-flight prefetches — a stale pending entry once resurrected an
// unregistered shared copy after an eviction) and validates the coherence
// invariants after every step.
func TestCoherenceRandomDirectiveStorm(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.CacheSize = 256
		cfg.Assoc = 2
		s := MustNew(cfg)
		now := uint64(0)
		for i := 0; i < 60; i++ {
			node := rng.Intn(4)
			addr := uint64(rng.Intn(16)) * 32
			op := rng.Intn(8)
			switch op {
			case 0, 1:
				s.Read(node, addr, now)
			case 2, 3:
				s.Write(node, addr, now)
			case 4:
				s.CheckOutX(node, addr, now)
			case 5:
				s.CheckOutS(node, addr, now)
			case 6:
				s.CheckIn(node, addr)
			case 7:
				s.Prefetch(node, addr, now, rng.Intn(2) == 0)
			}
			now += uint64(rng.Intn(200))
			if err := s.CheckCoherence(); err != nil {
				t.Fatalf("seed %d step %d op %d node %d addr %d: %v", seed, i, op, node, addr, err)
			}
		}
	}
}
