package dir1sw

import (
	"cachier/internal/cache"
	"cachier/internal/coherence"
	"cachier/internal/obs"
)

// The memory-system machinery (caches, directory storage, directive
// surface, self-checks) lives in internal/coherence; this file re-exports
// the shared types under their historical names and keeps the
// dir1sw.Config/New construction surface, so code that only ever wants the
// paper's protocol does not need to assemble the two halves itself.

// System is the shared memory system (see coherence.System).
type System = coherence.System

// Costs parameterizes the cycle cost model (see coherence.Costs).
type Costs = coherence.Costs

// Stats aggregates protocol activity (see coherence.Stats).
type Stats = coherence.Stats

// Result reports the outcome of one access or directive.
type Result = coherence.Result

// AccessKind classifies the outcome of a shared-memory access.
type AccessKind = coherence.AccessKind

// Access outcomes.
const (
	Hit        = coherence.Hit
	ReadMiss   = coherence.ReadMiss
	WriteMiss  = coherence.WriteMiss
	WriteFault = coherence.WriteFault
)

// DefaultCosts returns the model's default cost parameters.
func DefaultCosts() Costs { return coherence.DefaultCosts() }

// Config configures a Dir1SW System: the shared machinery's options plus
// the protocol's FullMap ablation switch.
type Config struct {
	Nodes     int
	CacheSize int
	Assoc     int
	BlockSize int
	Costs     Costs

	// PostStore emulates the KSR-1's post-store check-in (see
	// coherence.Config.PostStore).
	PostStore bool

	// FullMap models a full-map hardware directory (the Dir_N class the
	// Dir1SW work positions itself against): the directory knows every
	// sharer, so no transition traps to software and invalidations are
	// directed rather than broadcast. CICO directives still work but have
	// far less to save — the ablation that shows the annotations' value is
	// protocol-specific.
	FullMap bool

	// AddrSpace, Probe, Recorder: see coherence.Config.
	AddrSpace uint64
	Probe     bool
	Recorder  *obs.Recorder
}

// DefaultConfig is the paper's evaluated machine: 32 nodes, 256 KB 4-way
// set-associative caches, 32-byte blocks (Section 6).
func DefaultConfig() Config {
	return Config{
		Nodes:     32,
		CacheSize: cache.DefaultSize,
		Assoc:     cache.DefaultAssoc,
		BlockSize: cache.DefaultBlockSize,
		Costs:     DefaultCosts(),
	}
}

// New builds a System running Dir1SW (or its full-map ablation).
func New(cfg Config) (*System, error) {
	return coherence.New(coherence.Config{
		Nodes:     cfg.Nodes,
		CacheSize: cfg.CacheSize,
		Assoc:     cfg.Assoc,
		BlockSize: cfg.BlockSize,
		Costs:     cfg.Costs,
		PostStore: cfg.PostStore,
		AddrSpace: cfg.AddrSpace,
		Probe:     cfg.Probe,
		Recorder:  cfg.Recorder,
	}, Protocol(cfg.FullMap))
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}
