package dir1sw

import "math/bits"

// nodeSet is a set of node IDs. The directory's sharer list is conceptually
// a counter plus one pointer in Dir1SW hardware; the model keeps the exact
// set so it can deliver invalidations, but charges trap cost whenever the
// hardware would have had to (more than the single pointed-to sharer).
type nodeSet struct {
	words []uint64
}

func newNodeSet(n int) nodeSet {
	return nodeSet{words: make([]uint64, (n+63)/64)}
}

func (s nodeSet) add(i int)      { s.words[i/64] |= 1 << (i % 64) }
func (s nodeSet) remove(i int)   { s.words[i/64] &^= 1 << (i % 64) }
func (s nodeSet) has(i int) bool { return s.words[i/64]&(1<<(i%64)) != 0 }

func (s nodeSet) count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s nodeSet) clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// members returns the set's node IDs in ascending order.
func (s nodeSet) members() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// sole returns the single member if count()==1, else -1.
func (s nodeSet) sole() int {
	m := -1
	for wi, w := range s.words {
		if w == 0 {
			continue
		}
		if m >= 0 || w&(w-1) != 0 {
			return -1
		}
		m = wi*64 + bits.TrailingZeros64(w)
	}
	return m
}
