// Package dir1sw models the Wisconsin Dir1SW directory cache-coherence
// protocol (Hill et al., "Cooperative Shared Memory: Software and Hardware
// for Scalable Multiprocessors", TOCS 1993), the memory system the paper
// uses to evaluate CICO annotations as directives. It is one Protocol
// implementation over the shared machinery in internal/coherence; the
// DirₙNB/DirₙB hardware variants live in internal/dirn.
//
// Dir1SW keeps one hardware pointer plus a sharer counter per block and
// traps to system software on "complex" transitions. In this model:
//
//   - read miss to an Idle or Shared block: handled in hardware;
//   - write miss/fault when the writer is the only sharer: handled in
//     hardware (pointer check);
//   - write miss/fault with other sharers present: software trap that
//     broadcasts invalidations and collects acknowledgements;
//   - any miss to a block held Exclusive by another node: software trap
//     that retrieves/downgrades the owner's copy.
//
// CICO annotations act as directives (paper Section 4.1): a miss performs an
// implicit check-out; an explicit check_out_x before a read-then-write
// avoids the later upgrade fault; a check_in returns the block toward Idle
// so the next node's access avoids a trap and invalidations; prefetches
// overlap transfer latency with computation.
//
// The trap machinery is untouched by the lane engine's batched access
// resolution (coherence/batch.go): traps only occur on miss/fault paths,
// which always take the slow path and bump the state generation.
package dir1sw

import (
	"cachier/internal/cache"
	"cachier/internal/coherence"
	"cachier/internal/obs"
)

// protocol is the Dir1SW transition machine; fullMap switches it to the
// full-map ablation (see Config.FullMap).
type protocol struct {
	fullMap bool
}

// Protocol returns the Dir1SW protocol, or its full-map ablation.
func Protocol(fullMap bool) coherence.Protocol {
	return protocol{fullMap: fullMap}
}

func (p protocol) Name() string {
	if p.fullMap {
		return "FullMap"
	}
	return "Dir1SW"
}

// FetchShared acquires a read-only copy for node; the caller installs it.
func (p protocol) FetchShared(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	co := s.Costs()
	switch e.State {
	case coherence.Idle:
		s.SetState(e, coherence.Shared)
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		return co.CleanMiss(), false
	case coherence.Shared:
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		return co.CleanMiss(), false
	default: // Exclusive by another node: trap, downgrade owner
		owner := e.Owner
		s.CancelInflight(owner, block)
		if s.Cache(owner).Dirty(block) {
			s.Stats.Writebacks++
		}
		s.Cache(owner).SetState(block, cache.Shared)
		s.SetState(e, coherence.Shared)
		e.Sharers.Clear()
		e.Sharers.Add(owner)
		e.Sharers.Add(node)
		s.Stats.CtlMsgs += 2 // downgrade request + ack
		s.Stats.DataMsgs += 2
		if p.fullMap {
			return 4*co.NetHop + co.DirService + co.MemAccess, false
		}
		s.Recorder().Trap(obs.TrapDowngrade)
		return co.Trap + 4*co.NetHop + co.DirService + co.MemAccess, true
	}
}

// Upgrade makes node's shared copy exclusive, invalidating other sharers.
// Dir1SW keeps one pointer plus a counter: when the requester is the sole
// sharer the pointer check succeeds in hardware; otherwise software traps
// and, because the counter does not say who the sharers are, BROADCASTS
// invalidations to every other node (the protocol's key weakness, and the
// reason check-ins pay off).
func (p protocol) Upgrade(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	co := s.Costs()
	others := 0
	for _, sh := range e.Sharers.Members() {
		if sh != node {
			s.CancelInflight(sh, block)
			s.Cache(sh).Invalidate(block)
			s.NoteInvalidated(e, sh)
			s.Stats.Invalidations++
			others++
		}
	}
	s.SetState(e, coherence.Exclusive)
	e.Owner = node
	e.Sharers.Clear()
	s.Recorder().Invalidations(node, uint64(others))
	if others == 0 {
		// Pointer check succeeds: hardware handles the sole-sharer upgrade.
		return co.Upgrade(), false
	}
	if p.fullMap {
		// Full-map directory: directed invalidations in hardware, no trap.
		s.Stats.CtlMsgs += 2 * uint64(others)
		return co.Upgrade() + uint64(others)*co.InvalMsg, false
	}
	bcast := uint64(s.Nodes() - 1)
	s.Stats.CtlMsgs += 2 * bcast // broadcast invalidations + acks
	s.Recorder().Trap(obs.TrapUpgrade)
	return co.Trap + co.Upgrade() + bcast*co.InvalMsg, true
}

// FetchExclusive acquires a writable copy for node; the caller installs it.
func (p protocol) FetchExclusive(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	co := s.Costs()
	switch e.State {
	case coherence.Idle:
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		s.Stats.DataMsgs++
		return co.CleanMiss(), false
	case coherence.Shared:
		n := 0
		for _, sh := range e.Sharers.Members() {
			if sh != node {
				s.CancelInflight(sh, block)
				s.Cache(sh).Invalidate(block)
				s.NoteInvalidated(e, sh)
				s.Stats.Invalidations++
				n++
			}
		}
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		e.Sharers.Clear()
		s.Recorder().Invalidations(node, uint64(n))
		s.Stats.DataMsgs++
		if n == 0 {
			return co.CleanMiss(), false
		}
		if p.fullMap {
			s.Stats.CtlMsgs += 2 * uint64(n)
			return co.CleanMiss() + uint64(n)*co.InvalMsg, false
		}
		// Trap + broadcast: the counter does not identify the sharers.
		bcast := uint64(s.Nodes() - 1)
		s.Stats.CtlMsgs += 2 * bcast
		s.Recorder().Trap(obs.TrapWriteBroadcast)
		return co.Trap + co.CleanMiss() + bcast*co.InvalMsg, true
	default: // Exclusive by another node
		owner := e.Owner
		s.CancelInflight(owner, block)
		if s.Cache(owner).Dirty(block) {
			s.Stats.Writebacks++
		}
		s.Cache(owner).Invalidate(block)
		s.NoteInvalidated(e, owner)
		s.Stats.Invalidations++
		// An ownership handoff is a transition even though the state enum
		// is unchanged.
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		s.Recorder().Invalidations(node, 1)
		s.Stats.CtlMsgs += 2
		s.Stats.DataMsgs += 2
		if p.fullMap {
			// Hardware forwarding: same messages, no software trap.
			return 4*co.NetHop + co.DirService + co.MemAccess, false
		}
		s.Recorder().Trap(obs.TrapSteal)
		return co.Trap + 4*co.NetHop + co.DirService + co.MemAccess, true
	}
}

// CheckEntry: the model keeps the exact sharer set (the hardware's
// pointer+counter imprecision is charged as trap cost, not modelled as
// state loss), so Dir1SW adds no entry invariants beyond the generic ones.
func (p protocol) CheckEntry(s *coherence.System, e *coherence.Entry, block uint64) error {
	return nil
}
