package dir1sw

import (
	"math/rand"
	"testing"
)

func postStoreSys(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	cfg.PostStore = true
	return MustNew(cfg)
}

func TestPostStoreRefillsInvalidatedReaders(t *testing.T) {
	s := postStoreSys(t)
	// Nodes 1..3 read the block; node 0's write invalidates them.
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	s.Read(3, 64, 0)
	s.Write(0, 64, 10)
	if s.Stats.Invalidations != 3 {
		t.Fatalf("invalidations = %d", s.Stats.Invalidations)
	}
	// Node 0 checks the dirty block in: post-store pushes fresh read-only
	// copies back to the previous holders.
	s.CheckIn(0, 64)
	if s.Stats.PostStores != 3 {
		t.Fatalf("post-stores = %d, want 3", s.Stats.PostStores)
	}
	for n := 1; n <= 3; n++ {
		if r := s.Read(n, 64, 20); r.Kind != Hit {
			t.Errorf("node %d read after post-store: %v, want hit", n, r.Kind)
		}
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestPostStoreOnlyForDirtyCheckIns(t *testing.T) {
	s := postStoreSys(t)
	s.Read(1, 64, 0)
	s.Write(0, 64, 5) // invalidates node 1
	s.Write(1, 64, 10)
	// Node 1 now owns it dirty; node 0 was invalidated in the steal.
	s.Read(2, 64, 15) // downgrade: node 1's copy becomes shared & clean at dir
	// A shared check-in (not dirty-exclusive) must not post-store.
	s.CheckIn(1, 64)
	if s.Stats.PostStores != 0 {
		t.Errorf("post-stores = %d for a shared check-in", s.Stats.PostStores)
	}
}

func TestPostStoreDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	s := MustNew(cfg)
	s.Read(1, 64, 0)
	s.Write(0, 64, 10)
	s.CheckIn(0, 64)
	if s.Stats.PostStores != 0 {
		t.Errorf("post-stores = %d with PostStore off", s.Stats.PostStores)
	}
	// The reader misses again, as plain Dir1SW dictates.
	if r := s.Read(1, 64, 20); r.Kind != ReadMiss {
		t.Errorf("read = %v, want miss", r.Kind)
	}
}

func TestPostStoreProducerConsumerSavesMisses(t *testing.T) {
	// Producer writes + checks in each round; consumers re-read. With
	// post-store the consumers' re-reads all hit.
	run := func(postStore bool) (misses uint64) {
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.CacheSize = 1024
		cfg.PostStore = postStore
		s := MustNew(cfg)
		now := uint64(0)
		for round := 0; round < 5; round++ {
			for n := 1; n <= 3; n++ {
				s.Read(n, 64, now)
				now += 10
			}
			s.Write(0, 64, now)
			s.CheckIn(0, 64)
			now += 10
		}
		return s.Stats.ReadMisses
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("post-store did not reduce read misses: %d vs %d", with, without)
	}
}

func TestCoherenceRandomOpsWithPostStore(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.CacheSize = 256
		cfg.Assoc = 2
		cfg.PostStore = true
		s := MustNew(cfg)
		now := uint64(0)
		for i := 0; i < 60; i++ {
			node := rng.Intn(4)
			addr := uint64(rng.Intn(16)) * 32
			switch rng.Intn(8) {
			case 0, 1:
				s.Read(node, addr, now)
			case 2, 3:
				s.Write(node, addr, now)
			case 4:
				s.CheckOutX(node, addr, now)
			case 5:
				s.CheckOutS(node, addr, now)
			case 6:
				s.CheckIn(node, addr)
			case 7:
				s.Prefetch(node, addr, now, rng.Intn(2) == 0)
			}
			now += uint64(rng.Intn(200))
			if err := s.CheckCoherence(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
	}
}

func TestFullMapNeverTraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.CacheSize = 1024
	cfg.FullMap = true
	s := MustNew(cfg)
	// Every conflicting transition that traps under Dir1SW.
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	if r := s.Write(0, 64, 1); r.Trap {
		t.Error("full-map write to shared block trapped")
	}
	if r := s.Read(3, 64, 2); r.Trap {
		t.Error("full-map read of remote-exclusive trapped")
	}
	s.Write(4, 96, 0)
	if r := s.Write(5, 96, 1); r.Trap {
		t.Error("full-map write steal trapped")
	}
	if s.Stats.Traps != 0 {
		t.Errorf("traps = %d", s.Stats.Traps)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestFullMapDirectedInvalidations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 16
	cfg.CacheSize = 1024
	cfg.FullMap = true
	s := MustNew(cfg)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	before := s.Stats.CtlMsgs
	s.Write(0, 64, 1)
	// Directed: 2 invalidations + 2 acks, not 2*(N-1) broadcast messages.
	if got := s.Stats.CtlMsgs - before; got != 4 {
		t.Errorf("control messages = %d, want 4 (directed)", got)
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d", s.Stats.Invalidations)
	}
}

func TestFullMapUpgradeCheaperThanDir1SW(t *testing.T) {
	run := func(fullMap bool) uint64 {
		cfg := DefaultConfig()
		cfg.Nodes = 32
		cfg.CacheSize = 1024
		cfg.FullMap = fullMap
		s := MustNew(cfg)
		for n := 1; n < 8; n++ {
			s.Read(n, 64, 0)
		}
		r := s.Write(0, 64, 1)
		return r.Cycles
	}
	if fm, d1 := run(true), run(false); fm >= d1 {
		t.Errorf("full-map upgrade (%d) not cheaper than Dir1SW broadcast (%d)", fm, d1)
	}
}
