package cache

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Cache {
	t.Helper()
	// 2 sets x 2 ways x 32B blocks = 128 bytes.
	c, err := New(128, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	bad := []struct{ size, assoc, block int }{
		{0, 4, 32}, {256, 0, 32}, {256, 4, 0}, {100, 4, 32}, {3 * 32 * 4, 4, 32},
	}
	for _, g := range bad {
		if _, err := New(g.size, g.assoc, g.block); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	c, err := New(DefaultSize, DefaultAssoc, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != DefaultSize {
		t.Errorf("capacity %d", c.Capacity())
	}
}

func TestInsertLookupTouch(t *testing.T) {
	c := small(t)
	if c.Lookup(7) != Invalid {
		t.Error("empty cache claims block present")
	}
	if _, ev := c.Insert(7, Shared); ev {
		t.Error("eviction from empty cache")
	}
	if c.Lookup(7) != Shared {
		t.Error("inserted block not found")
	}
	if st := c.Touch(7); st != Shared {
		t.Errorf("Touch = %v", st)
	}
	if c.Hits != 1 {
		t.Errorf("hits = %d", c.Hits)
	}
	if st := c.Touch(9); st != Invalid {
		t.Errorf("Touch missing block = %v", st)
	}
	if c.Misses != 1 {
		t.Errorf("misses = %d", c.Misses)
	}
}

func TestInsertUpgradesState(t *testing.T) {
	c := small(t)
	c.Insert(4, Shared)
	if _, ev := c.Insert(4, Exclusive); ev {
		t.Error("re-insert evicted")
	}
	if c.Lookup(4) != Exclusive {
		t.Error("state not updated")
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d", c.Resident())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t)
	// Blocks 0, 2, 4 all map to set 0 (even block numbers with 2 sets).
	c.Insert(0, Shared)
	c.Insert(2, Shared)
	c.Touch(0) // 2 is now LRU
	v, ev := c.Insert(4, Shared)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if v.Block != 2 {
		t.Errorf("evicted block %d, want 2", v.Block)
	}
	if c.Lookup(0) != Shared || c.Lookup(4) != Shared || c.Lookup(2) != Invalid {
		t.Error("post-eviction contents wrong")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := small(t)
	c.Insert(0, Exclusive)
	c.MarkDirty(0)
	c.Insert(2, Shared)
	c.Touch(2) // 0 is LRU
	v, ev := c.Insert(4, Shared)
	if !ev || v.Block != 0 || !v.Dirty || v.State != Exclusive {
		t.Errorf("victim = %+v ev=%v", v, ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Insert(3, Exclusive)
	c.MarkDirty(3)
	st, dirty := c.Invalidate(3)
	if st != Exclusive || !dirty {
		t.Errorf("Invalidate = %v, %v", st, dirty)
	}
	if c.Resident() != 0 {
		t.Errorf("resident = %d", c.Resident())
	}
	if st, _ := c.Invalidate(3); st != Invalid {
		t.Error("double invalidate found block")
	}
}

func TestSetStateAndDirty(t *testing.T) {
	c := small(t)
	c.Insert(5, Exclusive)
	if !c.SetState(5, Shared) {
		t.Error("SetState missed resident block")
	}
	if c.Lookup(5) != Shared {
		t.Error("downgrade lost")
	}
	if c.SetState(99, Shared) {
		t.Error("SetState on absent block succeeded")
	}
	if c.MarkDirty(99) {
		t.Error("MarkDirty on absent block succeeded")
	}
	if !c.SetState(5, Invalid) {
		t.Error("SetState(Invalid) failed")
	}
	if c.Resident() != 0 {
		t.Error("SetState(Invalid) did not free the line")
	}
}

func TestFlushAll(t *testing.T) {
	c := small(t)
	c.Insert(1, Shared)
	c.Insert(2, Exclusive)
	c.MarkDirty(2)
	var flushed []uint64
	var sawDirty bool
	c.FlushAll(func(b uint64, st State, dirty bool) {
		flushed = append(flushed, b)
		if b == 2 && dirty && st == Exclusive {
			sawDirty = true
		}
	})
	if len(flushed) != 2 || !sawDirty {
		t.Errorf("flushed %v, sawDirty %v", flushed, sawDirty)
	}
	if c.Resident() != 0 {
		t.Errorf("resident after flush = %d", c.Resident())
	}
}

func TestBlocksListsResidents(t *testing.T) {
	c := small(t)
	c.Insert(1, Shared)
	c.Insert(2, Shared)
	got := c.Blocks()
	if len(got) != 2 {
		t.Fatalf("Blocks = %v", got)
	}
	seen := map[uint64]bool{got[0]: true, got[1]: true}
	if !seen[1] || !seen[2] {
		t.Errorf("Blocks = %v", got)
	}
}

// Property: resident count equals number of distinct blocks inserted minus
// evictions and invalidations, and never exceeds capacity/blockSize.
func TestResidencyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(256, 2, 32) // 4 sets x 2 ways
		live := make(map[uint64]bool)
		for _, op := range ops {
			b := uint64(op % 64)
			switch op % 3 {
			case 0:
				v, ev := c.Insert(b, Shared)
				live[b] = true
				if ev {
					delete(live, v.Block)
				}
			case 1:
				c.Touch(b)
			case 2:
				c.Invalidate(b)
				delete(live, b)
			}
			if c.Resident() != len(live) {
				return false
			}
			if c.Resident() > 8 {
				return false
			}
		}
		// Every live block must be found; no dead block may be found.
		for b := uint64(0); b < 64; b++ {
			if (c.Lookup(b) != Invalid) != live[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(Invalid) did not panic")
		}
	}()
	small(t).Insert(0, Invalid)
}

// TestMRUShortcut exercises the one-entry MRU position cache: hits through
// it, staleness after invalidation, after the line is reused for another
// block, and after a flush.
func TestMRUShortcut(t *testing.T) {
	c := small(t)

	c.Insert(4, Exclusive)
	if c.mru == nil || c.mru.block != 4 {
		t.Fatal("Insert did not set MRU")
	}
	if st := c.Touch(4); st != Exclusive {
		t.Fatalf("Touch via MRU = %v", st)
	}
	if c.Hits != 1 {
		t.Fatalf("Hits = %d after MRU touch", c.Hits)
	}
	if !c.MarkDirty(4) || !c.Dirty(4) {
		t.Fatal("MarkDirty/Dirty via MRU failed")
	}

	// Invalidate the MRU block: the stale pointer must not report a hit.
	c.Invalidate(4)
	if c.Lookup(4) != Invalid || c.Dirty(4) || c.Touch(4) != Invalid {
		t.Fatal("stale MRU survived Invalidate")
	}
	if c.Misses != 1 {
		t.Fatalf("Misses = %d", c.Misses)
	}

	// Reuse the same line slot for a different block in the same set
	// (blocks 4 and 6 both map to set 0 of a 2-set cache): the MRU pointer
	// now holds block 6, so probing 4 must miss.
	c.Insert(6, Shared)
	if c.Lookup(4) != Invalid {
		t.Fatal("MRU confused block 6 with block 4")
	}
	if c.Lookup(6) != Shared {
		t.Fatal("lost block 6")
	}

	// SetState through the MRU, including downgrade to Invalid.
	c.Touch(6)
	if !c.SetState(6, Exclusive) || c.Lookup(6) != Exclusive {
		t.Fatal("SetState upgrade via MRU failed")
	}
	if !c.SetState(6, Invalid) || c.Lookup(6) != Invalid {
		t.Fatal("SetState invalidate via MRU failed")
	}
	if c.Resident() != 0 {
		t.Fatalf("Resident = %d after invalidating everything", c.Resident())
	}

	// Flush with a valid MRU pointer outstanding.
	c.Insert(8, Shared)
	c.FlushAll(nil)
	if c.Lookup(8) != Invalid || c.Touch(8) != Invalid {
		t.Fatal("stale MRU survived FlushAll")
	}

	// Eviction reuses the victim's slot; MRU must follow the new block.
	c2 := small(t)
	c2.Insert(0, Shared) // set 0
	c2.Insert(2, Shared) // set 0 -> set full
	c2.Touch(0)
	c2.Insert(4, Shared) // evicts block 2 (LRU)
	if v := c2.Lookup(2); v != Invalid {
		t.Fatalf("evicted block still visible: %v", v)
	}
	if c2.Lookup(4) != Shared || c2.Touch(4) != Shared {
		t.Fatal("MRU not tracking newly inserted block after eviction")
	}
}

// TestMRUAgainstScan cross-checks every MRU fast path against a shortcut-free
// reference cache over a pseudo-random operation stream.
func TestMRUAgainstScan(t *testing.T) {
	c := small(t)
	ref := small(t)
	ref.mru = nil // keep the reference honest: clear before every probe
	rng := uint64(1)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for i := 0; i < 20000; i++ {
		block := next() % 16
		op := next() % 6
		ref.mru = nil
		switch op {
		case 0:
			if got, want := c.Touch(block), ref.Touch(block); got != want {
				t.Fatalf("op %d: Touch(%d) = %v, want %v", i, block, got, want)
			}
		case 1:
			if got, want := c.Lookup(block), ref.Lookup(block); got != want {
				t.Fatalf("op %d: Lookup(%d) = %v, want %v", i, block, got, want)
			}
		case 2:
			st := Shared
			if next()%2 == 0 {
				st = Exclusive
			}
			gv, gok := c.Insert(block, st)
			wv, wok := ref.Insert(block, st)
			if gv != wv || gok != wok {
				t.Fatalf("op %d: Insert(%d) = %v,%v want %v,%v", i, block, gv, gok, wv, wok)
			}
		case 3:
			if got, want := c.MarkDirty(block), ref.MarkDirty(block); got != want {
				t.Fatalf("op %d: MarkDirty(%d) = %v, want %v", i, block, got, want)
			}
		case 4:
			gs, gd := c.Invalidate(block)
			ws, wd := ref.Invalidate(block)
			if gs != ws || gd != wd {
				t.Fatalf("op %d: Invalidate(%d) = %v,%v want %v,%v", i, block, gs, gd, ws, wd)
			}
		case 5:
			if got, want := c.Dirty(block), ref.Dirty(block); got != want {
				t.Fatalf("op %d: Dirty(%d) = %v, want %v", i, block, got, want)
			}
		}
		if c.Resident() != ref.Resident() {
			t.Fatalf("op %d: resident %d vs %d", i, c.Resident(), ref.Resident())
		}
	}
}
