package cache

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Cache {
	t.Helper()
	// 2 sets x 2 ways x 32B blocks = 128 bytes.
	c, err := New(128, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	bad := []struct{ size, assoc, block int }{
		{0, 4, 32}, {256, 0, 32}, {256, 4, 0}, {100, 4, 32}, {3 * 32 * 4, 4, 32},
	}
	for _, g := range bad {
		if _, err := New(g.size, g.assoc, g.block); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	c, err := New(DefaultSize, DefaultAssoc, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != DefaultSize {
		t.Errorf("capacity %d", c.Capacity())
	}
}

func TestInsertLookupTouch(t *testing.T) {
	c := small(t)
	if c.Lookup(7) != Invalid {
		t.Error("empty cache claims block present")
	}
	if _, ev := c.Insert(7, Shared); ev {
		t.Error("eviction from empty cache")
	}
	if c.Lookup(7) != Shared {
		t.Error("inserted block not found")
	}
	if st := c.Touch(7); st != Shared {
		t.Errorf("Touch = %v", st)
	}
	if c.Hits != 1 {
		t.Errorf("hits = %d", c.Hits)
	}
	if st := c.Touch(9); st != Invalid {
		t.Errorf("Touch missing block = %v", st)
	}
	if c.Misses != 1 {
		t.Errorf("misses = %d", c.Misses)
	}
}

func TestInsertUpgradesState(t *testing.T) {
	c := small(t)
	c.Insert(4, Shared)
	if _, ev := c.Insert(4, Exclusive); ev {
		t.Error("re-insert evicted")
	}
	if c.Lookup(4) != Exclusive {
		t.Error("state not updated")
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d", c.Resident())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t)
	// Blocks 0, 2, 4 all map to set 0 (even block numbers with 2 sets).
	c.Insert(0, Shared)
	c.Insert(2, Shared)
	c.Touch(0) // 2 is now LRU
	v, ev := c.Insert(4, Shared)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if v.Block != 2 {
		t.Errorf("evicted block %d, want 2", v.Block)
	}
	if c.Lookup(0) != Shared || c.Lookup(4) != Shared || c.Lookup(2) != Invalid {
		t.Error("post-eviction contents wrong")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := small(t)
	c.Insert(0, Exclusive)
	c.MarkDirty(0)
	c.Insert(2, Shared)
	c.Touch(2) // 0 is LRU
	v, ev := c.Insert(4, Shared)
	if !ev || v.Block != 0 || !v.Dirty || v.State != Exclusive {
		t.Errorf("victim = %+v ev=%v", v, ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Insert(3, Exclusive)
	c.MarkDirty(3)
	st, dirty := c.Invalidate(3)
	if st != Exclusive || !dirty {
		t.Errorf("Invalidate = %v, %v", st, dirty)
	}
	if c.Resident() != 0 {
		t.Errorf("resident = %d", c.Resident())
	}
	if st, _ := c.Invalidate(3); st != Invalid {
		t.Error("double invalidate found block")
	}
}

func TestSetStateAndDirty(t *testing.T) {
	c := small(t)
	c.Insert(5, Exclusive)
	if !c.SetState(5, Shared) {
		t.Error("SetState missed resident block")
	}
	if c.Lookup(5) != Shared {
		t.Error("downgrade lost")
	}
	if c.SetState(99, Shared) {
		t.Error("SetState on absent block succeeded")
	}
	if c.MarkDirty(99) {
		t.Error("MarkDirty on absent block succeeded")
	}
	if !c.SetState(5, Invalid) {
		t.Error("SetState(Invalid) failed")
	}
	if c.Resident() != 0 {
		t.Error("SetState(Invalid) did not free the line")
	}
}

func TestFlushAll(t *testing.T) {
	c := small(t)
	c.Insert(1, Shared)
	c.Insert(2, Exclusive)
	c.MarkDirty(2)
	var flushed []uint64
	var sawDirty bool
	c.FlushAll(func(b uint64, st State, dirty bool) {
		flushed = append(flushed, b)
		if b == 2 && dirty && st == Exclusive {
			sawDirty = true
		}
	})
	if len(flushed) != 2 || !sawDirty {
		t.Errorf("flushed %v, sawDirty %v", flushed, sawDirty)
	}
	if c.Resident() != 0 {
		t.Errorf("resident after flush = %d", c.Resident())
	}
}

func TestBlocksListsResidents(t *testing.T) {
	c := small(t)
	c.Insert(1, Shared)
	c.Insert(2, Shared)
	got := c.Blocks()
	if len(got) != 2 {
		t.Fatalf("Blocks = %v", got)
	}
	seen := map[uint64]bool{got[0]: true, got[1]: true}
	if !seen[1] || !seen[2] {
		t.Errorf("Blocks = %v", got)
	}
}

// Property: resident count equals number of distinct blocks inserted minus
// evictions and invalidations, and never exceeds capacity/blockSize.
func TestResidencyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(256, 2, 32) // 4 sets x 2 ways
		live := make(map[uint64]bool)
		for _, op := range ops {
			b := uint64(op % 64)
			switch op % 3 {
			case 0:
				v, ev := c.Insert(b, Shared)
				live[b] = true
				if ev {
					delete(live, v.Block)
				}
			case 1:
				c.Touch(b)
			case 2:
				c.Invalidate(b)
				delete(live, b)
			}
			if c.Resident() != len(live) {
				return false
			}
			if c.Resident() > 8 {
				return false
			}
		}
		// Every live block must be found; no dead block may be found.
		for b := uint64(0); b < 64; b++ {
			if (c.Lookup(b) != Invalid) != live[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(Invalid) did not panic")
		}
	}()
	small(t).Insert(0, Invalid)
}
