// Package cache models a node's finite-capacity, set-associative,
// write-allocate shared-data cache with LRU replacement. The simulated
// machine in the paper's evaluation uses a 256 KB, 4-way set-associative
// cache with 32-byte blocks (Section 6); those are the defaults here.
//
// Lines carry the coherence state assigned by the Dir1SW protocol. The cache
// stores no data — values live in the simulator's global store — it exists
// to decide hits, misses, write faults, and evictions.
package cache

import "fmt"

// State is the coherence state of a cached block.
type State int

// Coherence states.
const (
	Invalid   State = iota
	Shared          // read-only copy
	Exclusive       // writable copy (may be dirty)
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Default geometry, matching the paper's simulated machine.
const (
	DefaultSize      = 256 * 1024
	DefaultAssoc     = 4
	DefaultBlockSize = 32
)

// line is 16 bytes so that a default 4-way set occupies a single real
// 64-byte cache line: the associative scan in Touch/Lookup is memory-bound
// across 32 simulated node caches, and halving the metadata footprint
// halves its miss traffic. use is a 32-bit LRU stamp; renormalize handles
// the (astronomically rare) wraparound without disturbing LRU order.
type line struct {
	block uint64 // block number (addr / blockSize)
	use   uint32 // LRU timestamp
	state uint8  // State, compressed
	dirty bool
}

// Cache is one node's shared-data cache, indexed by block number.
type Cache struct {
	blockSize int
	nsets     int
	assoc     int
	flat      []line // nsets*assoc lines, set-major
	tick      uint32 // LRU clock
	resident  int    // number of valid lines

	// mru caches the most recently hit or inserted line. Programs show
	// strong block locality (array walks touch the same 32-byte block
	// several times in a row), so checking one pointer before the
	// associative scan removes most probe work. The shortcut is
	// self-validating — it is trusted only when the line still holds the
	// probed block in a valid state — so invalidations, evictions, and
	// flushes need no bookkeeping here. The flat array is allocated once in
	// New and never reallocated, so the pointer stays in bounds forever.
	mru *line

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache with the given total size in bytes, associativity, and
// block size. Size must be divisible by assoc*blockSize and the resulting
// set count must be a power of two.
func New(size, assoc, blockSize int) (*Cache, error) {
	if size <= 0 || assoc <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (size=%d assoc=%d block=%d)", size, assoc, blockSize)
	}
	if size%(assoc*blockSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by assoc*block (%d)", size, assoc*blockSize)
	}
	nsets := size / (assoc * blockSize)
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", nsets)
	}
	return &Cache{
		blockSize: blockSize,
		nsets:     nsets,
		assoc:     assoc,
		flat:      make([]line, nsets*assoc),
	}, nil
}

// MustNew is New but panics on error; for configurations known valid.
func MustNew(size, assoc, blockSize int) *Cache {
	c, err := New(size, assoc, blockSize)
	if err != nil {
		panic(err)
	}
	return c
}

// BlockSize returns the block size in bytes.
func (c *Cache) BlockSize() int { return c.blockSize }

// Capacity returns the total capacity in bytes.
func (c *Cache) Capacity() int { return c.nsets * c.assoc * c.blockSize }

// Resident returns the number of valid lines currently cached.
func (c *Cache) Resident() int { return c.resident }

func (c *Cache) set(block uint64) []line {
	i := int(block&uint64(c.nsets-1)) * c.assoc
	return c.flat[i : i+c.assoc : i+c.assoc]
}

// bump advances the LRU clock. Just before the 32-bit clock would exhaust,
// renormalize compresses every set's stamps to their within-set rank —
// preserving LRU order exactly — and restarts the clock above them.
func (c *Cache) bump() uint32 {
	if c.tick >= ^uint32(0)-1 {
		c.renormalize()
	}
	c.tick++
	return c.tick
}

// renormalize replaces each line's use stamp with its rank among its set's
// stamps (ranks are unique: every stamp came from a distinct clock value).
// Relative LRU order within each set — the only thing eviction ever
// compares — is untouched.
func (c *Cache) renormalize() {
	a := c.assoc
	for s := 0; s < c.nsets; s++ {
		set := c.flat[s*a : (s+1)*a]
		for i := range set {
			rank := uint32(0)
			for j := range set {
				if set[j].use < set[i].use {
					rank++
				}
			}
			set[i].use = rank
		}
	}
	c.tick = uint32(c.assoc)
}

// hot reports whether the MRU shortcut currently holds the block.
func (c *Cache) hot(block uint64) bool {
	return c.mru != nil && c.mru.block == block && c.mru.state != uint8(Invalid)
}

// Lookup returns the block's state without touching LRU order. It returns
// Invalid for absent blocks.
func (c *Cache) Lookup(block uint64) State {
	if c.hot(block) {
		return State(c.mru.state)
	}
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			return State(ln.state)
		}
	}
	return Invalid
}

// Dirty reports whether the block is cached and dirty.
func (c *Cache) Dirty(block uint64) bool {
	if c.hot(block) {
		return c.mru.dirty
	}
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			return ln.dirty
		}
	}
	return false
}

// Touch marks the block most-recently used and returns its state. Use it for
// accesses that hit.
func (c *Cache) Touch(block uint64) State {
	tick := c.bump()
	if c.hot(block) {
		c.mru.use = tick
		c.Hits++
		return State(c.mru.state)
	}
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			ln.use = tick
			c.Hits++
			c.mru = ln
			return State(ln.state)
		}
	}
	c.Misses++
	return Invalid
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Block uint64
	State State
	Dirty bool
}

// Insert places a block with the given state, evicting the LRU line of its
// set if necessary. It returns the victim, if any. Inserting a block that is
// already present just updates its state.
func (c *Cache) Insert(block uint64, state State) (Victim, bool) {
	if state == Invalid {
		panic("cache: Insert with Invalid state")
	}
	tick := c.bump()
	set := c.set(block)
	var free, lru = -1, 0
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			ln.state = uint8(state)
			ln.use = tick
			c.mru = ln
			return Victim{}, false
		}
		if ln.state == uint8(Invalid) {
			free = i
		} else if set[i].use < set[lru].use || set[lru].state == uint8(Invalid) {
			lru = i
		}
	}
	if free >= 0 {
		set[free] = line{block: block, state: uint8(state), use: tick}
		c.resident++
		c.mru = &set[free]
		return Victim{}, false
	}
	v := Victim{Block: set[lru].block, State: State(set[lru].state), Dirty: set[lru].dirty}
	set[lru] = line{block: block, state: uint8(state), use: tick}
	c.Evictions++
	c.mru = &set[lru]
	return v, true
}

// SetState updates the state of a resident block (for upgrades and
// downgrades). It reports whether the block was present.
func (c *Cache) SetState(block uint64, state State) bool {
	if c.hot(block) {
		if state == Invalid {
			c.mru.state = uint8(Invalid)
			c.mru.dirty = false
			c.resident--
		} else {
			c.mru.state = uint8(state)
		}
		return true
	}
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			if state == Invalid {
				ln.state = uint8(Invalid)
				ln.dirty = false
				c.resident--
			} else {
				ln.state = uint8(state)
			}
			return true
		}
	}
	return false
}

// MarkDirty records that the block has been written. It reports whether the
// block was present.
func (c *Cache) MarkDirty(block uint64) bool {
	if c.hot(block) {
		c.mru.dirty = true
		return true
	}
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			ln.dirty = true
			return true
		}
	}
	return false
}

// Invalidate removes the block, returning its prior state and dirtiness.
func (c *Cache) Invalidate(block uint64) (State, bool) {
	set := c.set(block)
	for i := range set {
		ln := &set[i]
		if ln.state != uint8(Invalid) && ln.block == block {
			st, dirty := State(ln.state), ln.dirty
			*ln = line{}
			c.resident--
			return st, dirty
		}
	}
	return Invalid, false
}

// FlushAll invalidates every line, calling fn (if non-nil) for each valid
// line first. The WWT-style tracer flushes all shared-data caches at every
// barrier (paper Section 3.3). Lines of the same set are visited in way
// order; sets in index order.
func (c *Cache) FlushAll(fn func(block uint64, state State, dirty bool)) {
	for i := range c.flat {
		ln := &c.flat[i]
		if ln.state != uint8(Invalid) {
			if fn != nil {
				fn(ln.block, State(ln.state), ln.dirty)
			}
			*ln = line{}
			c.resident--
		}
	}
}

// ForEach calls fn for every valid line without modifying anything. Lines of
// the same set are visited in way order; sets in index order.
func (c *Cache) ForEach(fn func(block uint64, state State, dirty bool)) {
	for i := range c.flat {
		ln := &c.flat[i]
		if ln.state != uint8(Invalid) {
			fn(ln.block, State(ln.state), ln.dirty)
		}
	}
}

// Blocks returns the block numbers of all valid lines, in unspecified order.
func (c *Cache) Blocks() []uint64 {
	var out []uint64
	for i := range c.flat {
		if c.flat[i].state != uint8(Invalid) {
			out = append(out, c.flat[i].block)
		}
	}
	return out
}
