package staticanno

// The coherent replay: a faithful re-implementation of the simulator's
// sequential scheduler (internal/sim) driven by inferred event streams
// instead of live interpreters. An isolated per-node cache replay gets the
// misses on privately-owned blocks right but is blind to cross-node
// interference on falsely-shared blocks — a partition boundary block that
// ping-pongs between two writers produces extra write misses, flips a
// write fault into a write miss (the other node's invalidation lands
// between the read and the write), and turns silent Exclusive hits into
// write faults (a remote read downgraded the copy). Those events are real:
// the paper's trace-driven Cachier sees them and places pinned annotations
// at the boundary. So the static pipeline replays all nodes' streams
// through the real coherence protocol under the simulator's own scheduling
// rule — run the lowest-clock processor, keep it running while it is
// within one quantum of the lowest parked runnable clock, switch on every
// memory-system call — and charges the simulator's protocol access, lock,
// and barrier costs.
//
// Local compute is charged too: the inference mode mirrors the VM's
// per-statement work accounting, flushing pending units to the stream at
// the VM's own 512-cycle boundary, so the replay advances each clock by
// the same amounts between the same memory events. With protocol costs,
// lock and barrier costs, and local work all reproduced, an exact
// inference replays the simulator's schedule cycle for cycle.

import (
	"fmt"

	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
	"cachier/internal/memory"
	"cachier/internal/trace"
	"cachier/internal/vet"
)

// Scheduling constants, mirroring sim.DefaultConfig. The conformance
// harness asserts placement equality against simulations run with these
// values.
const (
	quantum        = 100
	barrierBase    = 80
	barrierPerNode = 10
	lockAcquire    = 60
	lockTransfer   = 40
)

type rOp int

const (
	rAccess rOp = iota
	rLock
	rUnlock
	rPrint
	rWork
	rBarrier
)

// rEvent is one flattened scheduler event: widened accesses are already
// expanded to single element addresses.
type rEvent struct {
	op     rOp
	write  bool
	addr   uint64
	pc     int
	lockID int64
	work   uint64 // local cycles, for rWork
}

type rStatus int

const (
	rReady rStatus = iota
	rAtBarrier
	rAtLock
	rDone
)

type rProc struct {
	id      int
	clock   uint64
	status  rStatus
	arrival uint64 // clock when the proc last blocked at a barrier
	stream  []rEvent
	pos     int
}

type rLockState struct {
	held    bool
	owner   int
	waiters []int // FIFO
}

// replayer owns one coherent replay: the protocol state, the processor
// streams, and the simulator's ready-heap scheduler.
type replayer struct {
	sys   *coherence.System
	b     *trace.Builder
	procs []*rProc
	ready []*rProc // min-heap by (clock, id); excludes the running proc
	limit uint64
	locks map[int64]*rLockState

	waiting          int
	pendingBarrierPC int
	done             int
}

// flattenStreams expands each node's inferred epochs into one linear event
// stream with explicit barrier events between epochs.
func flattenStreams(sum *vet.Summary, layout *memory.Layout) ([][]rEvent, error) {
	streams := make([][]rEvent, len(sum.Nodes))
	for n, ns := range sum.Nodes {
		var out []rEvent
		for _, ep := range ns.Epochs {
			for _, ev := range ep.Events {
				switch ev.Op {
				case vet.OpAccess:
					acc := ev.Access
					region := layout.Region(acc.Var)
					if region == nil {
						return nil, fmt.Errorf("staticanno: access to unknown shared variable %q", acc.Var)
					}
					addrs, err := elementAddrs(region, acc.Dims)
					if err != nil {
						return nil, err
					}
					for _, addr := range addrs {
						out = append(out, rEvent{op: rAccess, write: acc.Write, addr: addr, pc: acc.Stmt})
					}
				case vet.OpLock:
					out = append(out, rEvent{op: rLock, lockID: ev.Lock, pc: ev.Stmt})
				case vet.OpUnlock:
					out = append(out, rEvent{op: rUnlock, lockID: ev.Lock, pc: ev.Stmt})
				case vet.OpPrint:
					out = append(out, rEvent{op: rPrint, pc: ev.Stmt})
				case vet.OpWork:
					out = append(out, rEvent{op: rWork, work: ev.Work, pc: ev.Stmt})
				}
			}
			if ep.BarrierID >= 0 {
				out = append(out, rEvent{op: rBarrier, pc: ep.BarrierID})
			}
		}
		streams[n] = out
	}
	return streams, nil
}

// replay runs the streams to completion and returns the synthesized trace.
func replay(cfg Config, layout *memory.Layout, streams [][]rEvent) (*trace.Trace, error) {
	sys, err := coherence.New(coherence.Config{
		Nodes:     cfg.Nodes,
		CacheSize: cfg.CacheSize,
		Assoc:     cfg.Assoc,
		BlockSize: cfg.BlockSize,
		Costs:     coherence.DefaultCosts(),
		AddrSpace: layout.TotalBytes(),
	}, dir1sw.Protocol(false))
	if err != nil {
		return nil, err
	}
	r := &replayer{
		sys:   sys,
		b:     trace.NewBuilder(cfg.Nodes, cfg.BlockSize, traceLabels(layout)),
		locks: make(map[int64]*rLockState),
	}
	for i := 0; i < cfg.Nodes; i++ {
		r.procs = append(r.procs, &rProc{id: i, stream: streams[i]})
	}
	// Processor 0 runs first; all others start parked and runnable at
	// clock 0, exactly as the simulator launches.
	for _, p := range r.procs[1:] {
		r.heapPush(p)
	}
	r.refreshLimit()
	if err := r.run(r.procs[0]); err != nil {
		return nil, err
	}
	// Program end: close the final epoch with each node's completion clock
	// as its virtual time, as the simulator's epilogue does.
	vts := make([]uint64, len(r.procs))
	for i, p := range r.procs {
		vts[i] = p.clock
	}
	r.b.EndEpoch(-1, vts, true)
	tr := r.b.Trace()
	tr.SortMisses()
	return tr, nil
}

// run is the scheduler loop: execute the current processor's next event,
// then yield exactly as the simulator would after the corresponding
// machine call.
func (r *replayer) run(cur *rProc) error {
	for cur != nil {
		if cur.pos >= len(cur.stream) {
			// This processor's program ended. It may be the last thing a
			// barrier was waiting on.
			cur.status = rDone
			r.done++
			if r.waiting > 0 && r.waiting == r.active() {
				r.releaseBarrier(r.pendingBarrierPC, cur.id)
			}
			cur = r.yield(cur)
			continue
		}
		ev := cur.stream[cur.pos]
		cur.pos++
		switch ev.op {
		case rAccess:
			var res coherence.Result
			if ev.write {
				res = r.sys.Write(cur.id, ev.addr, cur.clock)
			} else {
				res = r.sys.Read(cur.id, ev.addr, cur.clock)
			}
			cur.clock += res.Cycles
			if res.Kind != coherence.Hit {
				r.b.AddMiss(replayMissKind(res.Kind), ev.addr, ev.pc, cur.id)
			}
		case rBarrier:
			cur.status = rAtBarrier
			cur.arrival = cur.clock
			r.waiting++
			r.pendingBarrierPC = ev.pc
			if r.waiting == r.active() {
				r.releaseBarrier(ev.pc, cur.id)
			}
		case rLock:
			ls := r.locks[ev.lockID]
			if ls == nil {
				ls = &rLockState{}
				r.locks[ev.lockID] = ls
			}
			if !ls.held {
				ls.held = true
				ls.owner = cur.id
				cur.clock += lockAcquire
			} else {
				ls.waiters = append(ls.waiters, cur.id)
				cur.status = rAtLock
			}
		case rUnlock:
			ls := r.locks[ev.lockID]
			if ls == nil || !ls.held || ls.owner != cur.id {
				return fmt.Errorf("staticanno: node %d unlocks lock %d it does not hold", cur.id, ev.lockID)
			}
			cur.clock += lockAcquire
			if len(ls.waiters) > 0 {
				w := ls.waiters[0]
				ls.waiters = ls.waiters[1:]
				ls.owner = w
				q := r.procs[w]
				q.status = rReady
				if t := cur.clock + lockTransfer; t > q.clock {
					q.clock = t
				}
				r.heapPush(q)
				r.refreshLimit()
			} else {
				ls.held = false
			}
		case rPrint:
			// Costs nothing; it is only a context-switch point.
		case rWork:
			cur.clock += ev.work
		}
		cur = r.yield(cur)
	}
	if r.done < len(r.procs) {
		return fmt.Errorf("staticanno: replay deadlock: %d of %d nodes blocked (barrier waiters: %d)",
			len(r.procs)-r.done, len(r.procs), r.waiting)
	}
	return nil
}

func (r *replayer) active() int { return len(r.procs) - r.done }

// releaseBarrier mirrors the simulator: synchronize clocks to the release
// time, close the trace epoch, and flush every cache so each epoch's
// misses start cold.
func (r *replayer) releaseBarrier(pc int, active int) {
	var maxClock uint64
	for _, q := range r.procs {
		if q.status == rAtBarrier && q.arrival > maxClock {
			maxClock = q.arrival
		}
	}
	release := maxClock + barrierBase + barrierPerNode*log2(len(r.procs))
	vts := make([]uint64, len(r.procs))
	for i, q := range r.procs {
		vts[i] = q.arrival
	}
	r.b.EndEpoch(pc, vts, false)
	for i := range r.procs {
		r.sys.FlushNode(i)
	}
	for _, q := range r.procs {
		if q.status == rAtBarrier {
			q.status = rReady
			q.clock = release
			if q.id != active {
				r.heapPush(q)
			}
		}
	}
	r.refreshLimit()
	r.waiting = 0
}

// yield returns the processor to run next: the caller while it is runnable
// within the quantum of the lowest parked clock, otherwise the heap
// minimum. nil means nothing is runnable (completion or deadlock).
func (r *replayer) yield(p *rProc) *rProc {
	if p.status == rReady && p.clock <= r.limit {
		return p
	}
	if len(r.ready) == 0 {
		return nil
	}
	q := r.heapMin()
	if p.status == rReady {
		r.heapReplaceMin(p)
		r.limit = r.heapMin().clock + quantum
	} else {
		r.heapPop()
		r.refreshLimit()
	}
	return q
}

// refreshLimit recomputes the keep-running bound after a heap mutation.
func (r *replayer) refreshLimit() {
	if len(r.ready) == 0 {
		r.limit = ^uint64(0)
		return
	}
	r.limit = r.heapMin().clock + quantum
}

func replayMissKind(k coherence.AccessKind) trace.Kind {
	switch k {
	case coherence.ReadMiss:
		return trace.ReadMiss
	case coherence.WriteMiss:
		return trace.WriteMiss
	default:
		return trace.WriteFault
	}
}

func log2(n int) uint64 {
	var l uint64
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// --- min-heap of parked runnable processors, ordered by (clock, id) ---
// The id tie-break keeps the schedule deterministic and identical to the
// simulator's: among equal clocks the lowest processor ID runs first.

func rLess(a, b *rProc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (r *replayer) heapMin() *rProc { return r.ready[0] }

func (r *replayer) heapPush(p *rProc) {
	r.ready = append(r.ready, p)
	i := len(r.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rLess(r.ready[i], r.ready[parent]) {
			break
		}
		r.ready[i], r.ready[parent] = r.ready[parent], r.ready[i]
		i = parent
	}
}

func (r *replayer) heapPop() *rProc {
	top := r.ready[0]
	last := len(r.ready) - 1
	r.ready[0] = r.ready[last]
	r.ready[last] = nil
	r.ready = r.ready[:last]
	r.heapSiftDown()
	return top
}

func (r *replayer) heapReplaceMin(p *rProc) {
	r.ready[0] = p
	r.heapSiftDown()
}

func (r *replayer) heapSiftDown() {
	n := len(r.ready)
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < n && rLess(r.ready[l], r.ready[smallest]) {
			smallest = l
		}
		if rt < n && rLess(r.ready[rt], r.ready[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		r.ready[i], r.ready[smallest] = r.ready[smallest], r.ready[i]
		i = smallest
	}
}
