// Package staticanno infers CICO annotations without running the program.
//
// The trace-driven Cachier (internal/core) consumes a miss trace from a
// simulation of the unannotated program. This package synthesizes that
// trace statically: the vet abstract interpreter's inference mode
// (vet.Summarize) reconstructs each node's barrier-delimited stream of
// scheduler-visible events — shared accesses, locks, prints — directly
// from the AST, and a coherent replay (replay.go) runs all the streams
// through the real Dir1SW protocol under the simulator's own scheduling
// rule, so cross-node interference on falsely-shared blocks produces the
// same extra misses, kind flips, and write faults a simulated trace
// carries. The synthetic trace then feeds the unchanged core.Annotate
// pipeline, so every placement rule (hoisting, generated loops, pinned
// conflict annotations) behaves identically whether the trace came from a
// simulation or from this package.
//
// On programs the interpreter can enumerate exactly — concrete loop
// bounds, concrete guards, affine subscripts — the synthetic trace matches
// the simulator's and the annotated outputs match byte for byte (the
// conformance harness asserts this over the generated corpus). Where the
// program is input-dependent the summary widens, Result.Exact turns false,
// and the trace over-approximates the footprint; racy programs
// additionally diverge because a real trace observes one schedule's
// interference and the inferred streams are another's.
package staticanno

import (
	"fmt"
	"strings"

	"cachier/internal/core"
	"cachier/internal/memory"
	"cachier/internal/parc"
	"cachier/internal/trace"
	"cachier/internal/vet"
)

// Config selects the modeled machine; it must match the machine the
// trace-driven pipeline would have simulated for the outputs to be
// comparable.
type Config struct {
	Nodes     int
	CacheSize int
	Assoc     int
	BlockSize int
	// EnumLimit and Fuel bound the abstract interpreter's concrete
	// enumeration; zero means vet's inference defaults.
	EnumLimit int
	Fuel      int
}

// DefaultConfig mirrors sim.DefaultConfig's machine: 32 nodes with 256 KB
// 4-way caches of 32-byte blocks.
func DefaultConfig() Config {
	return Config{Nodes: 32, CacheSize: 256 * 1024, Assoc: 4, BlockSize: 32}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.CacheSize <= 0 {
		c.CacheSize = d.CacheSize
	}
	if c.Assoc <= 0 {
		c.Assoc = d.Assoc
	}
	if c.BlockSize <= 0 {
		c.BlockSize = d.BlockSize
	}
	return c
}

// Result is one inference run's output.
type Result struct {
	Trace *trace.Trace
	// Exact reports that the event streams are the VM's own, so the
	// coherent replay reconstructs the trace a simulation would record.
	// Inexact traces over-approximate the footprint.
	Exact bool
	Notes []string
	// Summary is the underlying per-node access inference.
	Summary *vet.Summary
}

// Infer synthesizes the miss trace of prog on the configured machine.
func Infer(prog *parc.Program, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sum, err := vet.Summarize(prog, vet.InferOptions{
		Nprocs: cfg.Nodes, EnumLimit: cfg.EnumLimit, Fuel: cfg.Fuel,
	})
	if err != nil {
		return nil, err
	}
	if err := sum.CheckBarrierStructure(); err != nil {
		return nil, fmt.Errorf("staticanno: %w", err)
	}
	layout, err := memory.New(prog, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	streams, err := flattenStreams(sum, layout)
	if err != nil {
		return nil, err
	}
	tr, err := replay(cfg, layout, streams)
	if err != nil {
		return nil, err
	}
	return &Result{Trace: tr, Exact: sum.Exact, Notes: sum.Notes, Summary: sum}, nil
}

// elementAddrs expands one access's per-dimension element sets to byte
// addresses, row-major ascending. Exact accesses expand to one address;
// widened ones to their whole (bounds-clamped) footprint.
func elementAddrs(region *memory.Region, dims []vet.IndexSet) ([]uint64, error) {
	if len(dims) == 0 {
		addr, err := region.AddrOf()
		if err != nil {
			return nil, err
		}
		return []uint64{addr}, nil
	}
	perDim := make([][]int64, len(dims))
	total := 1
	for d, s := range dims {
		if s.Empty() {
			return nil, nil // provably no element touched
		}
		limit := 1
		if d < len(region.DimSizes) {
			limit = region.DimSizes[d]
		}
		els, ok := s.Enumerate(limit)
		if !ok {
			// The interpreter clamps subscripts to the array bounds, so an
			// unenumerable set here means a layout/summary mismatch.
			return nil, fmt.Errorf("staticanno: subscript set %+v of %s not enumerable", s, region.Name)
		}
		perDim[d] = els
		total *= len(els)
	}
	out := make([]uint64, 0, total)
	ix := make([]int, len(dims))
	var walk func(d int) error
	walk = func(d int) error {
		if d == len(dims) {
			addr, err := region.AddrOf(ix...)
			if err != nil {
				return err
			}
			out = append(out, addr)
			return nil
		}
		for _, v := range perDim[d] {
			ix[d] = int(v)
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

func traceLabels(l *memory.Layout) []trace.Label {
	var out []trace.Label
	for _, r := range l.Regions {
		out = append(out, trace.Label{
			Name: r.Label,
			Base: r.BaseAddr,
			Elem: parc.ElemSize,
			Dims: append([]int(nil), r.DimSizes...),
		})
	}
	return out
}

// Annotate runs the trace-free pipeline end to end: infer the trace, then
// the unchanged core placement. The source is parsed twice (once here for
// inference, once inside core.Annotate); both parses assign the same
// statement IDs, the same assumption the simulation pipeline relies on.
func Annotate(src string, cfg Config, opts core.Options) (*core.Result, *Result, error) {
	prog, err := parseChecked(src)
	if err != nil {
		return nil, nil, err
	}
	inf, err := Infer(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Annotate(src, inf.Trace, opts)
	if err != nil {
		return nil, inf, err
	}
	return res, inf, nil
}

// StyleDiff is one annotation style's static-vs-trace comparison.
type StyleDiff struct {
	Name   string // "performance", "performance+prefetch", "programmer"
	Opts   core.Options
	Match  bool
	Diff   string // unified line diff, empty when Match
	Static *core.Result
	Traced *core.Result
}

// Styles are the three pipeline variants the conformance harness measures.
func Styles() []StyleDiff {
	return []StyleDiff{
		{Name: "performance", Opts: core.Options{Style: core.StylePerformance}},
		{Name: "performance+prefetch", Opts: core.Options{Style: core.StylePerformance, Prefetch: true}},
		{Name: "programmer", Opts: core.Options{Style: core.StyleProgrammer}},
	}
}

// Compare annotates src from the given simulation trace and from static
// inference, in every style, and diffs the outputs. The caller supplies the
// trace so it controls the traced machine; cfg must describe the same one.
func Compare(src string, tr *trace.Trace, cfg Config) ([]StyleDiff, *Result, error) {
	prog, err := parseChecked(src)
	if err != nil {
		return nil, nil, err
	}
	inf, err := Infer(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	styles := Styles()
	for i := range styles {
		traced, err := core.Annotate(src, tr, styles[i].Opts)
		if err != nil {
			return nil, inf, fmt.Errorf("staticanno: traced %s annotate: %w", styles[i].Name, err)
		}
		static, err := core.Annotate(src, inf.Trace, styles[i].Opts)
		if err != nil {
			return nil, inf, fmt.Errorf("staticanno: static %s annotate: %w", styles[i].Name, err)
		}
		styles[i].Traced, styles[i].Static = traced, static
		styles[i].Match = traced.Source == static.Source
		if !styles[i].Match {
			styles[i].Diff = DiffLines(traced.Source, static.Source)
		}
	}
	return styles, inf, nil
}

func parseChecked(src string) (*parc.Program, error) {
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := parc.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// DiffLines renders a minimal unified diff of two texts ("-" lines from a,
// "+" lines from b), with unchanged lines elided. Good enough for placement
// divergence reports; not a general diff tool.
func DiffLines(a, b string) string {
	al := strings.Split(strings.TrimRight(a, "\n"), "\n")
	bl := strings.Split(strings.TrimRight(b, "\n"), "\n")
	// LCS table; the annotated programs are small.
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out strings.Builder
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			fmt.Fprintf(&out, "-%4d %s\n", i+1, al[i])
			i++
		default:
			fmt.Fprintf(&out, "+%4d %s\n", j+1, bl[j])
			j++
		}
	}
	for ; i < n; i++ {
		fmt.Fprintf(&out, "-%4d %s\n", i+1, al[i])
	}
	for ; j < m; j++ {
		fmt.Fprintf(&out, "+%4d %s\n", j+1, bl[j])
	}
	return out.String()
}
