package staticanno

import (
	"strings"
	"testing"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

const partitionSrc = `
const N = 64;
shared float A[N] label "A";
shared float B[N] label "B";
func main() {
    var chunk int = N / nprocs();
    var lo int = pid() * chunk;
    for i = lo to lo + chunk - 1 {
        A[i] = float(i);
    }
    barrier;
    for i = lo to lo + chunk - 1 {
        B[i] = A[i] * 2.0;
    }
    barrier;
}`

func parseTest(t *testing.T, src string) *parc.Program {
	t.Helper()
	prog, err := parseChecked(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func simTrace(t *testing.T, src string, nodes int) *trace.Trace {
	t.Helper()
	prog := parseTest(t, src)
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Mode = sim.ModeTrace
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func testConfig(nodes int) Config {
	c := DefaultConfig()
	c.Nodes = nodes
	return c
}

// sameMisses compares two traces' epoch structure and miss sets, ignoring
// virtual times (the static trace has none).
func sameMisses(t *testing.T, got, want *trace.Trace) {
	t.Helper()
	if len(got.Epochs) != len(want.Epochs) {
		t.Fatalf("epoch count: static %d, simulated %d", len(got.Epochs), len(want.Epochs))
	}
	for i := range want.Epochs {
		ge, we := got.Epochs[i], want.Epochs[i]
		if ge.BarrierPC != we.BarrierPC {
			t.Errorf("epoch %d barrier pc: static %d, simulated %d", i, ge.BarrierPC, we.BarrierPC)
		}
		if len(ge.Misses) != len(we.Misses) {
			t.Fatalf("epoch %d: static has %d misses, simulated %d\nstatic:    %v\nsimulated: %v",
				i, len(ge.Misses), len(we.Misses), ge.Misses, we.Misses)
		}
		for k := range we.Misses {
			if ge.Misses[k] != we.Misses[k] {
				t.Errorf("epoch %d miss %d: static %+v, simulated %+v", i, k, ge.Misses[k], we.Misses[k])
			}
		}
	}
}

// TestInferMatchesSimulatedTrace is the tentpole's core claim in miniature:
// on a race-free, concretely enumerable partition program the synthetic
// trace carries exactly the misses a simulated trace run records.
func TestInferMatchesSimulatedTrace(t *testing.T) {
	const nodes = 4
	inf, err := Infer(parseTest(t, partitionSrc), testConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	if !inf.Exact {
		t.Fatalf("partition program should infer exactly; notes: %v", inf.Notes)
	}
	sameMisses(t, inf.Trace, simTrace(t, partitionSrc, nodes))
}

// TestInferLabels: the synthetic trace must carry the same labelling the
// simulator attaches, or core.Annotate's label check rejects it.
func TestInferLabels(t *testing.T) {
	inf, err := Infer(parseTest(t, partitionSrc), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	sim := simTrace(t, partitionSrc, 4)
	if len(inf.Trace.Labels) != len(sim.Labels) {
		t.Fatalf("label count: static %d, simulated %d", len(inf.Trace.Labels), len(sim.Labels))
	}
	for i, l := range sim.Labels {
		g := inf.Trace.Labels[i]
		if g.Name != l.Name || g.Base != l.Base || g.Elem != l.Elem || len(g.Dims) != len(l.Dims) {
			t.Errorf("label %d: static %+v, simulated %+v", i, g, l)
		}
	}
}

// TestCompareAllStylesMatch: end-to-end differential — both pipelines must
// print byte-identical annotated sources in every style.
func TestCompareAllStylesMatch(t *testing.T) {
	diffs, inf, err := Compare(partitionSrc, simTrace(t, partitionSrc, 4), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !inf.Exact {
		t.Fatalf("expected exact inference; notes: %v", inf.Notes)
	}
	for _, d := range diffs {
		if !d.Match {
			t.Errorf("%s placements diverge:\n%s", d.Name, d.Diff)
		}
		if d.Static.Annotations == 0 {
			t.Errorf("%s: static pipeline placed no annotations", d.Name)
		}
	}
}

// TestAnnotateStandalone: the trace-free entry point works with no
// simulation anywhere in the loop.
func TestAnnotateStandalone(t *testing.T) {
	res, inf, err := Annotate(partitionSrc, testConfig(4),
		core.Options{Style: core.StylePerformance})
	if err != nil {
		t.Fatal(err)
	}
	if !inf.Exact {
		t.Fatalf("expected exact inference; notes: %v", inf.Notes)
	}
	if res.Annotations == 0 || !strings.Contains(res.Source, "check_in") {
		t.Errorf("static annotation placed nothing:\n%s", res.Source)
	}
}

// TestInferInexactOverapproximates: with an input-dependent subscript the
// static trace must still cover the footprint any execution could touch.
func TestInferInexactOverapproximates(t *testing.T) {
	const src = `
const N = 8;
shared float A[N] label "A";
shared int idx label "idx";
func main() {
    if pid() == 0 {
        A[idx] = 1.0;
    }
    barrier;
}`
	inf, err := Infer(parseTest(t, src), testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if inf.Exact {
		t.Fatal("input-dependent subscript should be inexact")
	}
	// Node 0's write misses must cover every block of A (misses record only
	// first touches per block, as in a simulated trace: 8 elements of 8
	// bytes span 2 blocks of 32).
	blocks := map[uint64]bool{}
	for _, m := range inf.Trace.Epochs[0].Misses {
		if m.Node == 0 && m.Kind != trace.ReadMiss {
			blocks[m.Addr/32] = true
		}
	}
	if len(blocks) != 2 {
		t.Errorf("widened write should touch both blocks of A, touched %d", len(blocks))
	}
}

func TestDiffLines(t *testing.T) {
	if d := DiffLines("a\nb\nc\n", "a\nb\nc\n"); d != "" {
		t.Errorf("equal inputs diffed: %q", d)
	}
	d := DiffLines("a\nb\nc\n", "a\nx\nc\n")
	if !strings.Contains(d, "-   2 b") || !strings.Contains(d, "+   2 x") {
		t.Errorf("unexpected diff:\n%s", d)
	}
}
