package analysis

import (
	"testing"

	"cachier/internal/parc"
)

const src = `
const N = 8;
shared float A[N][N] label "A";
shared float B[N][N];
shared int flag;

func helper(k int) {
    A[k][0] = 1.0;
}

func main() {
    for i = 0 to N - 1 {
        for j = 0 to N - 1 {
            A[i][j] = B[i][j] + A[i][j + 1];
        }
        barrier;
    }
    while flag < 3 {
        flag += 1;
    }
    helper(2);
}
`

func analyzed(t *testing.T) *Info {
	t.Helper()
	return Analyze(parc.MustParse(src))
}

func findStmt[T parc.Stmt](prog *parc.Program, pick func(T) bool) T {
	var out T
	found := false
	parc.WalkProgram(prog, func(s parc.Stmt) bool {
		if n, ok := s.(T); ok && !found && pick(n) {
			out = n
			found = true
		}
		return true
	})
	if !found {
		panic("statement not found")
	}
	return out
}

// mainAssign matches the A[i][j] = B[i][j] + A[i][j+1] statement in main
// (helper also assigns to A, so match on the RHS mentioning B).
func mainAssign(a *parc.AssignStmt) bool {
	return a.LHS.Name == "A" && len(a.LHS.Indices) == 2 && MentionsVar(a.RHS, "B")
}

func TestLoopNesting(t *testing.T) {
	in := analyzed(t)
	// The A[i][j] = ... assignment is inside two loops.
	asn := findStmt[*parc.AssignStmt](in.Prog, mainAssign)
	loops := in.Loops(asn.ID())
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	if loops[0].Var != "i" || loops[1].Var != "j" {
		t.Errorf("loop order: %s, %s (want i, j outermost first)", loops[0].Var, loops[1].Var)
	}
}

func TestParentBlockAndIndex(t *testing.T) {
	in := analyzed(t)
	asn := findStmt[*parc.AssignStmt](in.Prog, mainAssign)
	b, idx, ok := in.Block(asn.ID())
	if !ok {
		t.Fatal("no parent block")
	}
	if b.Stmts[idx] != parc.Stmt(asn) {
		t.Error("index does not locate the statement")
	}
}

func TestFuncAttribution(t *testing.T) {
	in := analyzed(t)
	h := findStmt[*parc.AssignStmt](in.Prog, func(a *parc.AssignStmt) bool {
		return a.LHS.Name == "A" && len(a.LHS.Indices) == 2 && a.LHS.Indices[0].(*parc.VarRef).Name == "k"
	})
	if f := in.Func(h.ID()); f == nil || f.Name != "helper" {
		t.Errorf("func = %v", f)
	}
}

func TestRefsExtraction(t *testing.T) {
	in := analyzed(t)
	asn := findStmt[*parc.AssignStmt](in.Prog, mainAssign)
	refs := in.Refs(asn.ID())
	// Write to A, read of B, read of A[i][j+1].
	var writes, readsA, readsB int
	for _, r := range refs {
		switch {
		case r.Var == "A" && r.Write:
			writes++
		case r.Var == "A":
			readsA++
		case r.Var == "B" && !r.Write:
			readsB++
		}
	}
	if writes != 1 || readsA != 1 || readsB != 1 {
		t.Errorf("refs = %+v", refs)
	}
}

func TestCompoundAssignAddsRead(t *testing.T) {
	in := analyzed(t)
	asn := findStmt[*parc.AssignStmt](in.Prog, func(a *parc.AssignStmt) bool {
		return a.LHS.Name == "flag"
	})
	refs := in.Refs(asn.ID())
	var r, w int
	for _, ref := range refs {
		if ref.Var == "flag" {
			if ref.Write {
				w++
			} else {
				r++
			}
		}
	}
	if r != 1 || w != 1 {
		t.Errorf("flag refs: %d reads %d writes", r, w)
	}
}

func TestSharedScalarInCondition(t *testing.T) {
	in := analyzed(t)
	wh := findStmt[*parc.WhileStmt](in.Prog, func(*parc.WhileStmt) bool { return true })
	refs := in.Refs(wh.ID())
	if len(refs) != 1 || refs[0].Var != "flag" || refs[0].Write {
		t.Errorf("while-cond refs = %+v", refs)
	}
}

func TestContainsBarrier(t *testing.T) {
	in := analyzed(t)
	outer := findStmt[*parc.ForStmt](in.Prog, func(f *parc.ForStmt) bool { return f.Var == "i" })
	inner := findStmt[*parc.ForStmt](in.Prog, func(f *parc.ForStmt) bool { return f.Var == "j" })
	if !in.ContainsBarrier(outer) {
		t.Error("outer loop contains a barrier but analysis says no")
	}
	if in.ContainsBarrier(inner) {
		t.Error("inner loop does not contain a barrier but analysis says yes")
	}
}

func TestAllRefsOrdered(t *testing.T) {
	in := analyzed(t)
	all := in.AllRefs()
	if len(all) < 5 {
		t.Fatalf("AllRefs = %d refs", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Stmt.ID() > all[i].Stmt.ID() {
			t.Error("refs not in statement order")
		}
	}
}

func TestMentionsVar(t *testing.T) {
	prog := parc.MustParse(`
shared float A[8];
func main() {
    var i int = 1;
    var j int = 2;
    A[i + j * 2] = float(min(i, 3));
}
`)
	asn := findStmt[*parc.AssignStmt](prog, func(*parc.AssignStmt) bool { return true })
	ix := asn.LHS.Indices[0]
	if !MentionsVar(ix, "i") || !MentionsVar(ix, "j") || MentionsVar(ix, "k") {
		t.Error("MentionsVar on index wrong")
	}
	if !MentionsVar(asn.RHS, "i") || MentionsVar(asn.RHS, "j") {
		t.Error("MentionsVar through calls wrong")
	}
}

func TestAffineInVar(t *testing.T) {
	mk := func(src string) parc.Expr {
		prog := parc.MustParse("shared float A[64]; func main() { var i int = 0; var c int = 0; A[" + src + "] = 1.0; }")
		asn := findStmt[*parc.AssignStmt](prog, func(*parc.AssignStmt) bool { return true })
		return asn.LHS.Indices[0]
	}
	if off, neg, ok := AffineInVar(mk("i"), "i"); !ok || off != nil || neg {
		t.Error("plain var not affine")
	}
	if off, neg, ok := AffineInVar(mk("i + 1"), "i"); !ok || off == nil || neg {
		t.Error("i+1 not affine")
	}
	if off, neg, ok := AffineInVar(mk("c + i"), "i"); !ok || off == nil || neg {
		t.Error("c+i not affine")
	}
	if off, neg, ok := AffineInVar(mk("i - 2"), "i"); !ok || off == nil || !neg {
		t.Error("i-2 not affine-negated")
	}
	if _, _, ok := AffineInVar(mk("i * 2"), "i"); ok {
		t.Error("i*2 wrongly affine")
	}
	if _, _, ok := AffineInVar(mk("i + i"), "i"); ok {
		t.Error("i+i wrongly affine")
	}
	if _, _, ok := AffineInVar(mk("c"), "i"); ok {
		t.Error("var-free expression wrongly affine in i")
	}
}

func TestConstExpr(t *testing.T) {
	consts := map[string]int64{"N": 8}
	mk := func(src string) parc.Expr {
		prog := parc.MustParse("const N = 8; shared float A[N * N]; func main() { var i int = 0; A[" + src + "] = 1.0; }")
		asn := findStmt[*parc.AssignStmt](prog, func(*parc.AssignStmt) bool { return true })
		return asn.LHS.Indices[0]
	}
	if v, ok := ConstExpr(mk("N * 2 + 1"), consts); !ok || v != 17 {
		t.Errorf("N*2+1 = %d, %v", v, ok)
	}
	if v, ok := ConstExpr(mk("N - 1"), consts); !ok || v != 7 {
		t.Errorf("N-1 = %d, %v", v, ok)
	}
	if _, ok := ConstExpr(mk("i + 1"), consts); ok {
		t.Error("non-const accepted")
	}
	if v, ok := ConstExpr(mk("0 - N"), consts); !ok || v != -8 {
		t.Errorf("0-N = %d, %v", v, ok)
	}
}

func TestConstExprOverflow(t *testing.T) {
	const minI64, maxI64 = -9223372036854775808, 9223372036854775807
	consts := map[string]int64{"MIN": minI64, "MAX": maxI64, "HALF": maxI64 / 2}
	mk := func(src string) parc.Expr {
		prog := parc.MustParse("shared float A[8]; func main() { " +
			"var MIN int = 0; var MAX int = 0; var HALF int = 0; A[" + src + "] = 1.0; }")
		asn := findStmt[*parc.AssignStmt](prog, func(*parc.AssignStmt) bool { return true })
		return asn.LHS.Indices[0]
	}
	cases := []struct {
		expr string
		want int64
		ok   bool
	}{
		{"MAX + 1", 0, false},
		{"MIN - 1", 0, false},
		{"MIN + MIN", 0, false},
		{"MAX * 2", 0, false},
		{"HALF * 2", maxI64 - 1, true},
		{"MIN * 0 - 1", -1, true},
		{"-MIN", 0, false},
		{"-MAX", minI64 + 1, true},
		{"MIN / (0 - 1)", 0, false}, // MinInt64 / -1 wraps
		{"MIN / 1", minI64, true},
		{"MAX + (0 - 1)", maxI64 - 1, true},
		{"MIN - MIN", 0, true},
	}
	for _, c := range cases {
		v, ok := ConstExpr(mk(c.expr), consts)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("ConstExpr(%q) = %d, %v; want %d, %v", c.expr, v, ok, c.want, c.ok)
		}
	}
}

func TestTripCountBounds(t *testing.T) {
	const minI64, maxI64 = -9223372036854775808, 9223372036854775807
	cases := []struct {
		from, to, step int64
		want           uint64
		ok             bool
	}{
		{0, 9, 1, 10, true},
		{0, 9, 2, 5, true},
		{0, 9, 3, 4, true},
		{9, 0, -1, 10, true},
		{9, 0, -3, 4, true},
		{5, 4, 1, 0, true},  // empty ascending
		{4, 5, -1, 0, true}, // empty descending
		{0, 0, 5, 1, true},
		{0, 0, 0, 0, false},                                   // zero step never terminates
		{minI64, maxI64, 1, 0, false},                         // to-from overflows
		{maxI64, minI64, -1, 0, false},                        // from-to overflows
		{minI64 + 1, maxI64, maxI64, 0, false},                // diff exceeds int64 even though trips would be small
		{0, maxI64, minI64, 0, true},                          // negative max-magnitude step, wrong direction
		{maxI64, 0, minI64, 1, true},                          // |MinInt64| step covers the range in one trip
		{maxI64 - 1, maxI64, 1, 2, true},                      // bounds at the edge, no overflow
		{minI64, minI64 + 2, 1, 3, true},                      // negative edge
		{-4, 4, 3, 3, true},                                   // crosses zero
		{4, -4, -3, 3, true},                                  // crosses zero descending
		{minI64 / 2, maxI64 / 2, 1, uint64(maxI64) + 1, true}, // diff = MaxInt64, trips still fit uint64
	}
	for _, c := range cases {
		got, ok := TripCountBounds(c.from, c.to, c.step)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("TripCountBounds(%d, %d, %d) = %d, %v; want %d, %v",
				c.from, c.to, c.step, got, ok, c.want, c.ok)
		}
	}
}

func TestTripCountForStmt(t *testing.T) {
	consts := map[string]int64{"N": 8}
	mk := func(head string) *parc.ForStmt {
		prog := parc.MustParse("const N = 8; shared float A[N]; func main() { var j int = 3; " + head + " { A[0] = 1.0; } }")
		return findStmt[*parc.ForStmt](prog, func(*parc.ForStmt) bool { return true })
	}
	if n, ok := TripCount(mk("for i = 0 to N - 1"), consts); !ok || n != 8 {
		t.Errorf("0..N-1 = %d, %v", n, ok)
	}
	if n, ok := TripCount(mk("for i = N - 1 to 0 step -2"), consts); !ok || n != 4 {
		t.Errorf("reverse step -2 = %d, %v", n, ok)
	}
	if _, ok := TripCount(mk("for i = 0 to N - 1 step 0 - 0"), consts); ok {
		t.Error("zero step accepted")
	}
	if _, ok := TripCount(mk("for i = 0 to j"), consts); ok {
		t.Error("non-const bound accepted")
	}
}
