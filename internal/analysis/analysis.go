// Package analysis computes the static program information Cachier combines
// with the dynamic trace (paper Sections 3.4 and 4.2-4.3): for every
// statement, its enclosing block and position, its enclosing loop nest, its
// function, and the shared-array references it contains. Because ParC has
// structured control flow only, loop nesting and parent links subsume the
// control-flow graph for the placement decisions Cachier makes: check-outs
// hoist outward through loop levels and stop at barriers and function
// boundaries.
package analysis

import (
	"cachier/internal/parc"
)

// Ref is one static shared-array reference site.
type Ref struct {
	Stmt    parc.Stmt   // statement containing the reference
	Var     string      // shared variable name
	Indices []parc.Expr // subscripts (nil for shared scalars)
	Write   bool
}

// Info is the static analysis result for one program.
type Info struct {
	Prog *parc.Program

	parentBlock map[int]*parc.Block // stmt ID -> enclosing block
	parentIndex map[int]int         // stmt ID -> index within enclosing block
	parentStmt  map[int]parc.Stmt   // stmt ID -> immediate parent statement
	loops       map[int][]*parc.ForStmt
	fn          map[int]*parc.FuncDecl
	refs        map[int][]Ref
	hasBarrier  map[int]bool // stmt ID -> subtree contains a barrier
}

// Analyze builds static information for the whole program.
func Analyze(prog *parc.Program) *Info {
	in := &Info{
		Prog:        prog,
		parentBlock: make(map[int]*parc.Block),
		parentIndex: make(map[int]int),
		parentStmt:  make(map[int]parc.Stmt),
		loops:       make(map[int][]*parc.ForStmt),
		fn:          make(map[int]*parc.FuncDecl),
		refs:        make(map[int][]Ref),
		hasBarrier:  make(map[int]bool),
	}
	for _, f := range prog.Funcs {
		in.visit(f.Body, f, nil)
	}
	return in
}

// visit records parent/loop/function links for s's subtree. loops is the
// enclosing for-loop chain, outermost first.
func (in *Info) visit(s parc.Stmt, f *parc.FuncDecl, loops []*parc.ForStmt) bool {
	if s == nil {
		return false
	}
	in.fn[s.ID()] = f
	in.loops[s.ID()] = append([]*parc.ForStmt(nil), loops...)
	barrier := false
	switch n := s.(type) {
	case *parc.Block:
		for i, c := range n.Stmts {
			in.parentBlock[c.ID()] = n
			in.parentIndex[c.ID()] = i
			in.parentStmt[c.ID()] = n
			if in.visit(c, f, loops) {
				barrier = true
			}
		}
	case *parc.IfStmt:
		in.parentStmt[n.Then.ID()] = n
		if in.visit(n.Then, f, loops) {
			barrier = true
		}
		if n.Else != nil {
			in.parentStmt[n.Else.ID()] = n
			if in.visit(n.Else, f, loops) {
				barrier = true
			}
		}
		in.collectRefs(n.ID(), nil, n.Cond)
	case *parc.WhileStmt:
		in.parentStmt[n.Body.ID()] = n
		if in.visit(n.Body, f, loops) {
			barrier = true
		}
		in.collectRefs(n.ID(), nil, n.Cond)
	case *parc.ForStmt:
		in.parentStmt[n.Body.ID()] = n
		if in.visit(n.Body, f, append(loops, n)) {
			barrier = true
		}
		in.collectRefs(n.ID(), nil, n.From, n.To, n.Step)
	case *parc.BarrierStmt:
		barrier = true
	case *parc.VarDeclStmt:
		in.collectRefs(n.ID(), nil, n.Init)
	case *parc.AssignStmt:
		if _, shared := in.Prog.SharedMap[n.LHS.Name]; shared {
			in.refs[n.ID()] = append(in.refs[n.ID()], Ref{
				Stmt: n, Var: n.LHS.Name, Indices: n.LHS.Indices, Write: true,
			})
			if n.Op != parc.OpSet {
				// Compound assignment also reads the destination.
				in.refs[n.ID()] = append(in.refs[n.ID()], Ref{
					Stmt: n, Var: n.LHS.Name, Indices: n.LHS.Indices, Write: false,
				})
			}
		}
		in.collectRefs(n.ID(), n, n.RHS)
		for _, ix := range n.LHS.Indices {
			in.collectRefs(n.ID(), n, ix)
		}
	case *parc.LockStmt:
		in.collectRefs(n.ID(), nil, n.LockID)
	case *parc.UnlockStmt:
		in.collectRefs(n.ID(), nil, n.LockID)
	case *parc.ReturnStmt:
		in.collectRefs(n.ID(), nil, n.Value)
	case *parc.ExprStmt:
		in.collectRefs(n.ID(), nil, n.Call)
	case *parc.PrintStmt:
		in.collectRefs(n.ID(), nil, n.Args...)
	}
	in.hasBarrier[s.ID()] = barrier
	return barrier
}

// collectRefs records shared reads inside the given expressions, attributed
// to statement id. owner, when non-nil, is used as the Ref's statement; it
// is the statement the trace PC will name.
func (in *Info) collectRefs(id int, owner parc.Stmt, exprs ...parc.Expr) {
	if owner == nil {
		owner = in.Prog.Stmts[id]
	}
	for _, e := range exprs {
		in.walkExpr(id, owner, e)
	}
}

func (in *Info) walkExpr(id int, owner parc.Stmt, e parc.Expr) {
	switch n := e.(type) {
	case nil:
	case *parc.VarRef:
		if d, ok := in.Prog.SharedMap[n.Name]; ok && len(d.DimSizes) == 0 {
			in.refs[id] = append(in.refs[id], Ref{Stmt: owner, Var: n.Name, Write: false})
		}
	case *parc.IndexExpr:
		if _, ok := in.Prog.SharedMap[n.Name]; ok {
			in.refs[id] = append(in.refs[id], Ref{Stmt: owner, Var: n.Name, Indices: n.Indices, Write: false})
		}
		for _, ix := range n.Indices {
			in.walkExpr(id, owner, ix)
		}
	case *parc.CallExpr:
		for _, a := range n.Args {
			in.walkExpr(id, owner, a)
		}
	case *parc.UnaryExpr:
		in.walkExpr(id, owner, n.X)
	case *parc.BinaryExpr:
		in.walkExpr(id, owner, n.X)
		in.walkExpr(id, owner, n.Y)
	}
}

// Block returns the block directly containing the statement and the
// statement's index within it. ok is false for function bodies themselves.
func (in *Info) Block(id int) (b *parc.Block, index int, ok bool) {
	b, ok = in.parentBlock[id]
	return b, in.parentIndex[id], ok
}

// Parent returns the immediate parent statement (a block, if, while, or for).
func (in *Info) Parent(id int) parc.Stmt { return in.parentStmt[id] }

// Loops returns the for-loops enclosing the statement, outermost first.
func (in *Info) Loops(id int) []*parc.ForStmt { return in.loops[id] }

// Func returns the function whose body contains the statement.
func (in *Info) Func(id int) *parc.FuncDecl { return in.fn[id] }

// Refs returns the shared-array references contained in the statement
// (not including nested statements).
func (in *Info) Refs(id int) []Ref { return in.refs[id] }

// ContainsBarrier reports whether the statement's subtree contains a
// barrier; check-outs must not hoist above such statements, since their
// bodies span epochs.
func (in *Info) ContainsBarrier(s parc.Stmt) bool { return in.hasBarrier[s.ID()] }

// AllRefs returns every shared reference site in the program, in statement
// ID order.
func (in *Info) AllRefs() []Ref {
	var out []Ref
	parc.WalkProgram(in.Prog, func(s parc.Stmt) bool {
		out = append(out, in.refs[s.ID()]...)
		return true
	})
	return out
}

// MentionsVar reports whether the expression references the given name.
func MentionsVar(e parc.Expr, name string) bool {
	found := false
	var walk func(parc.Expr)
	walk = func(e parc.Expr) {
		if found || e == nil {
			return
		}
		switch n := e.(type) {
		case *parc.VarRef:
			if n.Name == name {
				found = true
			}
		case *parc.IndexExpr:
			if n.Name == name {
				found = true
			}
			for _, ix := range n.Indices {
				walk(ix)
			}
		case *parc.CallExpr:
			for _, a := range n.Args {
				walk(a)
			}
		case *parc.UnaryExpr:
			walk(n.X)
		case *parc.BinaryExpr:
			walk(n.X)
			walk(n.Y)
		}
	}
	walk(e)
	return found
}

// AffineInVar decomposes an index expression as (var + offset) when the
// expression is the loop variable itself or the loop variable plus/minus an
// expression not mentioning it. It returns the offset expression (nil for
// zero) and whether the decomposition succeeded. Hoisting a check-out above
// a loop substitutes the loop bounds into such indices; non-affine uses
// (v*2, A[v%k]) block hoisting past that loop.
func AffineInVar(e parc.Expr, v string) (offset parc.Expr, negated bool, ok bool) {
	switch n := e.(type) {
	case *parc.VarRef:
		if n.Name == v {
			return nil, false, true
		}
	case *parc.BinaryExpr:
		if n.Op == parc.TokPlus {
			if vr, isVar := n.X.(*parc.VarRef); isVar && vr.Name == v && !MentionsVar(n.Y, v) {
				return n.Y, false, true
			}
			if vr, isVar := n.Y.(*parc.VarRef); isVar && vr.Name == v && !MentionsVar(n.X, v) {
				return n.X, false, true
			}
		}
		if n.Op == parc.TokMinus {
			if vr, isVar := n.X.(*parc.VarRef); isVar && vr.Name == v && !MentionsVar(n.Y, v) {
				return n.Y, true, true
			}
		}
	}
	return nil, false, false
}

// TripCount computes a for-loop's static trip count when its bounds and step
// are program constants. Both Cachier's placement (loop footprints) and the
// vet race detector (epoch-aligned loop enumeration) depend on it.
func TripCount(l *parc.ForStmt, consts map[string]int64) (uint64, bool) {
	from, ok1 := ConstExpr(l.From, consts)
	to, ok2 := ConstExpr(l.To, consts)
	if !ok1 || !ok2 {
		return 0, false
	}
	step := int64(1)
	if l.Step != nil {
		s, ok := ConstExpr(l.Step, consts)
		if !ok || s == 0 {
			return 0, false
		}
		step = s
	}
	return TripCountBounds(from, to, step)
}

// TripCountBounds is TripCount on already-evaluated bounds; the vet abstract
// interpreter uses it for loops whose bounds are node-concrete (pid-derived)
// rather than program constants. A range so wide that to-from overflows int64
// reports ok=false rather than folding a wrapped value.
func TripCountBounds(from, to, step int64) (uint64, bool) {
	if step == 0 {
		return 0, false
	}
	if step > 0 {
		if to < from {
			return 0, true
		}
		diff, ok := subOK(to, from)
		if !ok {
			return 0, false
		}
		return uint64(diff)/uint64(step) + 1, true
	}
	if from < to {
		return 0, true
	}
	diff, ok := subOK(from, to)
	if !ok {
		return 0, false
	}
	// |step| computed in uint64 so MinInt64 needs no special case.
	mag := uint64(-(step + 1)) + 1
	return uint64(diff)/mag + 1, true
}

// addOK, subOK, mulOK, and negOK are int64 arithmetic with explicit overflow
// reporting; ConstExpr must never fold a silently wrapped value into a trip
// count or footprint.
func addOK(x, y int64) (int64, bool) {
	s := x + y
	if (x > 0 && y > 0 && s < 0) || (x < 0 && y < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOK(x, y int64) (int64, bool) {
	d := x - y
	if (y < 0 && d < x) || (y > 0 && d > x) {
		return 0, false
	}
	return d, true
}

func mulOK(x, y int64) (int64, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	p := x * y
	if p/y != x {
		return 0, false
	}
	return p, true
}

func negOK(x int64) (int64, bool) {
	if x == -x && x != 0 { // MinInt64
		return 0, false
	}
	return -x, true
}

// ConstExpr evaluates an expression that uses only literals and program
// constants, reporting ok=false otherwise. Used to compute trip counts and
// footprints statically where possible.
func ConstExpr(e parc.Expr, consts map[string]int64) (int64, bool) {
	switch n := e.(type) {
	case *parc.IntLit:
		return n.Value, true
	case *parc.VarRef:
		v, ok := consts[n.Name]
		return v, ok
	case *parc.UnaryExpr:
		if n.Op != parc.TokMinus {
			return 0, false
		}
		v, ok := ConstExpr(n.X, consts)
		if !ok {
			return 0, false
		}
		return negOK(v)
	case *parc.BinaryExpr:
		x, okx := ConstExpr(n.X, consts)
		y, oky := ConstExpr(n.Y, consts)
		if !okx || !oky {
			return 0, false
		}
		switch n.Op {
		case parc.TokPlus:
			return addOK(x, y)
		case parc.TokMinus:
			return subOK(x, y)
		case parc.TokStar:
			return mulOK(x, y)
		case parc.TokSlash:
			if y == 0 {
				return 0, false
			}
			if x == -x && x != 0 && y == -1 { // MinInt64 / -1 wraps
				return 0, false
			}
			return x / y, true
		case parc.TokPercent:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		}
	}
	return 0, false
}
