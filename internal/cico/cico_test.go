package cico

import "testing"

func TestBlocksInRange(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		want   uint64
	}{
		{0, 0, 1},
		{0, 31, 1},
		{0, 32, 2},
		{31, 32, 2},
		{32, 95, 2},
		{40, 40, 1},
		{100, 99, 0}, // empty
	}
	for _, c := range cases {
		if got := BlocksInRange(c.lo, c.hi, 32); got != c.want {
			t.Errorf("BlocksInRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestJacobiFormulas(t *testing.T) {
	// Spot-check the paper's closed forms with N=64, P=4, T=10, b=4.
	var n, p, tt, b int64 = 64, 4, 10, 4
	// 2*64*4*10*5/4 + 64*64/4 = 6400 + 1024 = 7424
	if got := JacobiWholeMatrixCheckouts(n, p, tt, b); got != 7424 {
		t.Errorf("whole-fit = %d", got)
	}
	// (2*64*4*5/4 + 1024) * 10 = (640+1024)*10 = 16640
	if got := JacobiColumnCheckouts(n, p, tt, b); got != 16640 {
		t.Errorf("column-fit = %d", got)
	}
	// The column regime always costs at least as much per run.
	if JacobiColumnCheckouts(n, p, tt, b) < JacobiWholeMatrixCheckouts(n, p, tt, b) {
		t.Error("column regime cheaper than whole-fit regime")
	}
	// Per-processor per-column counts: N/(bP) vs NT/(bP), ratio T.
	w := JacobiPerProcColumnBlocksWholeFit(n, p, b)
	c := JacobiPerProcColumnBlocksColumnFit(n, p, tt, b)
	if c != w*tt {
		t.Errorf("per-column counts: whole %d column %d, want ratio %d", w, c, tt)
	}
}

func TestMatMulSection5Counts(t *testing.T) {
	var n, p, b int64 = 256, 4, 4
	if got := MatMulOriginalCCheckouts(n); got != 256*256*256 {
		t.Errorf("original = %d", got)
	}
	// N^2 * P / 2 = 65536*4/2 = 131072
	if got := MatMulRestructuredCCheckouts(n, p, b); got != 131072 {
		t.Errorf("restructured = %d", got)
	}
	// N^2 * P / 4 = 65536
	if got := MatMulRestructuredRacyCheckouts(n, p, b); got != 65536 {
		t.Errorf("racy = %d", got)
	}
	// Restructuring must slash C's check-out count (by N*2/P here).
	if MatMulRestructuredCCheckouts(n, p, b) >= MatMulOriginalCCheckouts(n) {
		t.Error("restructuring did not reduce check-outs")
	}
}

func TestProgramCost(t *testing.T) {
	c := DefaultCosts()
	if got := c.ProgramCost(10, 10); got != 10*c.CheckOutBlock+10*c.CheckInBlock {
		t.Errorf("cost = %d", got)
	}
	if c.ProgramCost(0, 0) != 0 {
		t.Error("empty program has nonzero cost")
	}
}

func TestFootprintOverlap(t *testing.T) {
	a := map[uint64]bool{1: true, 2: true, 3: true}
	b := map[uint64]bool{2: true, 3: true, 4: true, 5: true}
	both, onlyA, onlyB := FootprintOverlap(a, b)
	if both != 2 || onlyA != 1 || onlyB != 2 {
		t.Errorf("overlap = (%d, %d, %d), want (2, 1, 2)", both, onlyA, onlyB)
	}
	if both, onlyA, onlyB = FootprintOverlap(nil, nil); both+onlyA+onlyB != 0 {
		t.Error("empty sets overlap")
	}
}
