// Package cico implements the check-in/check-out cost model of Larus,
// Chandra, and Wood ("CICO: A Practical Shared-Memory Programming
// Performance Model") as used by the paper: program communication cost is
// measured in cache blocks checked out, and the worked examples of Sections
// 2.1 and 5 give closed forms that the simulator's measured counts must
// match.
package cico

// BlocksInRange returns how many cache blocks the inclusive element address
// range [lo, hi] touches.
func BlocksInRange(lo, hi uint64, blockSize int) uint64 {
	if hi < lo {
		return 0
	}
	bs := uint64(blockSize)
	return hi/bs - lo/bs + 1
}

// BlocksTouched returns how many distinct cache blocks a set of element
// addresses occupies. It is the block-footprint side of the CICO cost
// equations: a node that writes these addresses in an epoch must acquire at
// least this many blocks exclusively (by write miss, write fault,
// check_out_x, or prefetch_x), which is what lets a differential harness
// bound measured protocol counters by trace-derived footprints.
func BlocksTouched(addrs map[uint64]bool, blockSize int) uint64 {
	if blockSize <= 0 {
		return 0
	}
	bs := uint64(blockSize)
	blocks := make(map[uint64]bool, len(addrs))
	for a := range addrs {
		blocks[a/bs] = true
	}
	return uint64(len(blocks))
}

// JacobiWholeMatrixCheckouts is the paper's Section 2.1 first regime: the
// blocked N x N matrix fits in each processor's cache, so the matrix is
// checked out once and only boundary rows/columns are re-checked-out each
// time step. Across P^2 processors and T time steps the total is
//
//	2NPT(1+b)/b + N^2/b
//
// cache blocks, where b is the number of matrix elements per cache block.
func JacobiWholeMatrixCheckouts(n, p, t, b int64) int64 {
	return 2*n*p*t*(1+b)/b + n*n/b
}

// JacobiColumnCheckouts is Section 2.1's second regime: a processor's block
// of the matrix does not fit in its cache but single columns do, so the
// matrix is re-checked-out column by column every time step:
//
//	(2NP(1+b)/b + N^2/b) * T
func JacobiColumnCheckouts(n, p, t, b int64) int64 {
	return (2*n*p*(1+b)/b + n*n/b) * t
}

// JacobiPerProcColumnBlocksWholeFit is the per-processor, per-column count
// for the fits-in-cache regime used in Section 2.1's closing comparison:
// N/(bP) blocks per column of the matrix over the whole run.
func JacobiPerProcColumnBlocksWholeFit(n, p, b int64) int64 { return n / (b * p) }

// JacobiPerProcColumnBlocksColumnFit is the same count for the second
// regime: NT/(bP) blocks per column, because every time step re-checks the
// column out.
func JacobiPerProcColumnBlocksColumnFit(n, p, t, b int64) int64 { return n * t / (b * p) }

// MatMulOriginalCCheckouts is Section 5's count for the unconventional
// matrix multiply before restructuring: every inner-loop update checks the
// result element out and back in, N * N/P * N/P * P^2 = N^3 check-outs of
// matrix C, all racing on cache blocks.
func MatMulOriginalCCheckouts(n int64) int64 { return n * n * n }

// MatMulRestructuredCCheckouts is Section 5's count after restructuring
// with local accumulation: 2 * N * N/(bP) * P^2 = N^2 * P / 2 check-outs of
// C (copy-in plus copy-back, b = 4 elements per block).
func MatMulRestructuredCCheckouts(n, p, b int64) int64 { return 2 * n * (n / (b * p)) * p * p }

// MatMulRestructuredRacyCheckouts is the portion of the restructured
// check-outs that still race (the lock-protected copy-back): N^2 * P / 4
// with b = 4.
func MatMulRestructuredRacyCheckouts(n, p, b int64) int64 { return n * (n / (b * p)) * p * p }

// FootprintOverlap compares two block-footprint sets (block numbers, as
// BlocksTouched counts them): blocks in both, blocks only in a, and blocks
// only in b. Under the CICO cost model the asymmetry prices an
// over-approximation — every extra block one side would check out costs a
// block transfer the other side does not pay — so differential harnesses
// report onlyA/onlyB directly as communication-cost deltas.
func FootprintOverlap(a, b map[uint64]bool) (both, onlyA, onlyB uint64) {
	for blk := range a {
		if b[blk] {
			both++
		} else {
			onlyA++
		}
	}
	for blk := range b {
		if !a[blk] {
			onlyB++
		}
	}
	return both, onlyA, onlyB
}

// Costs attributes an abstract communication cost to CICO events, in the
// spirit of the CICO cost model: checking out a block costs a full block
// transfer, checking in costs a message, and a block-race re-checkout pays
// the transfer every time.
type Costs struct {
	CheckOutBlock uint64 // cost per block checked out
	CheckInBlock  uint64 // cost per block checked in
}

// DefaultCosts mirrors the relative weights of the memory-system model: a
// check-out moves a block (expensive), a check-in sends it home (cheaper).
func DefaultCosts() Costs { return Costs{CheckOutBlock: 100, CheckInBlock: 10} }

// ProgramCost is the CICO model's communication cost for a program whose
// annotations checked out co blocks and checked in ci blocks in total.
func (c Costs) ProgramCost(co, ci uint64) uint64 {
	return co*c.CheckOutBlock + ci*c.CheckInBlock
}
