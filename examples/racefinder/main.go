// Racefinder: besides inserting annotations, Cachier flags potential data
// races and false sharing (Section 4.3), which the programmer fixes with
// locks or padding. This example plants one of each in a small program,
// shows Cachier's report, and demonstrates that padding the falsely-shared
// counters removes both the flag and the coherence traffic.
//
//	go run ./examples/racefinder
package main

import (
	"fmt"
	"log"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// counters[pid()] puts the four counters in one 32-byte cache block (false
// sharing); total is read-modify-written by everyone without a lock (data
// race).
const buggy = `
const ROUNDS = 50;
shared float counters[4] label "counters";
shared float total label "total";

func main() {
    for r = 1 to ROUNDS {
        counters[pid()] = counters[pid()] + 1.0;
        total = total + 1.0;
    }
    barrier;
}
`

// The fix suggested by the flags: pad each counter to its own block, and
// accumulate privately with a single lock-protected update of the shared
// total. (The epoch model deliberately ignores locks — paper Section 3.1 —
// so the remaining locked update is still reported as a potential race;
// the lock makes it benign.)
const fixed = `
const ROUNDS = 50;
shared float counters[4][4] label "counters";
shared float total label "total";

func main() {
    var mine float = 0.0;
    for r = 1 to ROUNDS {
        counters[pid()][0] = counters[pid()][0] + 1.0;
        mine = mine + 1.0;
    }
    lock(0);
    total = total + mine;
    unlock(0);
    barrier;
}
`

func report(name, src string) *sim.Result {
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4

	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	traced, err := sim.Run(parc.MustParse(src), traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := core.Annotate(src, traced.Trace, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", name)
	if len(ann.Reports) == 0 {
		fmt.Println("cachier: no data races or false sharing found")
	}
	for _, r := range ann.Reports {
		fmt.Printf("cachier: %s on %s at %s (%d address(es))\n", r.Kind, r.Var, r.Pos, r.Addrs)
	}
	res, err := sim.Run(parc.MustParse(src), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unannotated run: %d cycles, %d traps, %d invalidations\n\n",
		res.Cycles, res.Stats.Traps, res.Stats.Invalidations)
	return res
}

func main() {
	before := report("buggy: shared counters in one block, unlocked total", buggy)
	after := report("fixed: padded counters, locked total", fixed)
	fmt.Printf("coherence traps %d -> %d after applying Cachier's diagnosis\n",
		before.Stats.Traps, after.Stats.Traps)
}
