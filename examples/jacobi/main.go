// The paper's Section 2.1 cost-model example: run the two annotated Jacobi
// regimes and check the simulator's measured check-out counts against the
// closed forms — 2NPT(1+b)/b + N^2/b when the processor's block fits in its
// cache, and (2NP(1+b)/b + N^2/b)T when only single rows fit.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"cachier/internal/bench"
	"cachier/internal/cico"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

func main() {
	p := bench.JacobiParams
	cfg := sim.DefaultConfig()
	cfg.Nodes = p.P * p.P

	run := func(src string) (*sim.Result, *obs.Recorder) {
		rcfg := cfg
		rcfg.Recorder = obs.New(rcfg.Nodes, rcfg.BlockSize)
		res, err := sim.Run(parc.MustParse(src), rcfg)
		if err != nil {
			log.Fatal(err)
		}
		return res, rcfg.Recorder
	}

	n, pp, t := int64(p.N), int64(p.P), int64(p.Steps)
	const b = 4 // matrix elements per 32-byte cache block

	fmt.Printf("Jacobi relaxation, N=%d, P=%d (%d processors), T=%d, b=%d\n\n",
		p.N, p.P, p.P*p.P, p.Steps, b)

	whole, wholeRec := run(bench.JacobiWholeFit(p))
	wholeU := wholeRec.Var("U")
	wantWhole := cico.JacobiWholeMatrixCheckouts(n, pp, t, b)
	fmt.Printf("regime 1 (block fits in cache):\n")
	fmt.Printf("  formula 2NPT(1+b)/b + N^2/b = %d blocks\n", wantWhole)
	fmt.Printf("  measured check-outs of U     = %d blocks\n\n", wholeU.CheckOuts())

	row, rowRec := run(bench.JacobiRowFit(p))
	rowU := rowRec.Var("U")
	wantRow := cico.JacobiColumnCheckouts(n, pp, t, b)
	fmt.Printf("regime 2 (single rows fit):\n")
	fmt.Printf("  formula (2NP(1+b)/b + N^2/b)T = %d blocks\n", wantRow)
	fmt.Printf("  measured check-outs of U      = %d blocks\n\n", rowU.CheckOuts())

	fmt.Printf("per-processor per-column blocks, regime 1: %d  regime 2: %d (ratio T=%d)\n",
		cico.JacobiPerProcColumnBlocksWholeFit(n, pp, b),
		cico.JacobiPerProcColumnBlocksColumnFit(n, pp, t, b), t)

	costs := cico.DefaultCosts()
	fmt.Printf("\nCICO model communication cost: regime 1 = %d, regime 2 = %d\n",
		costs.ProgramCost(wholeU.CheckOuts(), wholeU.CheckIns),
		costs.ProgramCost(rowU.CheckOuts(), rowU.CheckIns))
	fmt.Printf("simulated execution time:      regime 1 = %d, regime 2 = %d cycles\n",
		whole.Cycles, row.Cycles)
}
