// The paper's Section 4.4 / Section 5 story on the unconventional matrix
// multiply: show the Programmer CICO and Performance CICO annotations
// Cachier inserts (including the flagged data race on the result matrix),
// then compare the annotated original against the Section 5 restructured
// program that a programmer derives from those annotations.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"cachier/internal/bench"
	"cachier/internal/cico"
	"cachier/internal/core"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

func main() {
	b := bench.MatMul()
	cfg := sim.DefaultConfig()
	cfg.Nodes = b.Nodes

	src := b.Source(b.Train)
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	traced, err := sim.Run(parc.MustParse(src), traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Programmer CICO exposes every communication event for reasoning.
	opts := core.DefaultOptions()
	opts.Style = core.StyleProgrammer
	prg, err := core.Annotate(src, traced.Trace, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("===== Programmer CICO (Section 4.4) =====")
	fmt.Println(prg.Source)

	// Performance CICO keeps only what helps Dir1SW.
	opts.Style = core.StylePerformance
	perf, err := core.Annotate(src, traced.Trace, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("===== Performance CICO (Section 4.4) =====")
	fmt.Println(perf.Source)
	for _, r := range perf.Reports {
		fmt.Printf("flagged: %s on %s\n", r.Kind, r.Var)
	}

	// Section 5: the annotations reveal the block race on C; the
	// restructured program accumulates privately and copies back under
	// locks.
	n, p := int64(b.Train.N), int64(b.Train.P)
	fmt.Printf("\ncheck-outs of C, original (N^3):        %d\n", cico.MatMulOriginalCCheckouts(n))
	fmt.Printf("check-outs of C, restructured (N^2P/2): %d\n", cico.MatMulRestructuredCCheckouts(n, p, 4))
	fmt.Printf("  of which still racing, lock-protected: %d\n\n", cico.MatMulRestructuredRacyCheckouts(n, p, 4))

	base, err := sim.Run(parc.MustParse(b.Source(b.Test)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	annotated, err := sim.Run(parc.MustParse(perf.Source), cfg)
	if err != nil {
		log.Fatal(err)
	}
	restrCfg := cfg
	restrCfg.Recorder = obs.New(restrCfg.Nodes, restrCfg.BlockSize)
	restructured, err := sim.Run(parc.MustParse(bench.RestructuredMatMul(b.Test)), restrCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unannotated original:  %9d cycles (1.000)\n", base.Cycles)
	fmt.Printf("Cachier-annotated:     %9d cycles (%.3f)\n", annotated.Cycles,
		float64(annotated.Cycles)/float64(base.Cycles))
	fmt.Printf("restructured (Sec. 5): %9d cycles (%.3f), measured C check-outs: %d\n",
		restructured.Cycles, float64(restructured.Cycles)/float64(base.Cycles),
		restrCfg.Recorder.Var("C").CheckOuts())
}
