// Quickstart: the complete Cachier pipeline on a small producer/consumer
// program — trace the unannotated program, let Cachier insert CICO
// annotations, and measure both versions on the simulated Dir1SW machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// A pipeline over a shared grid: processor 0 produces a data set, everyone
// transforms their own band, then reads a neighbour's band — the
// produce/consume handoffs are exactly what check-ins accelerate under
// Dir1SW.
const src = `
const N = 128;
shared float data[N][N] label "data";
shared float out[N][N] label "out";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    var hi int = lo + per - 1;
    var nlo int = ((pid() + 1) % nprocs()) * per;
    if pid() == 0 {
        rndseed(42);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                data[i][j] = rnd();
            }
        }
    }
    barrier;
    // Transform the owned band in place (read-then-write: write faults).
    for i = lo to hi {
        for j = 0 to N - 1 {
            data[i][j] = data[i][j] * 2.0 + 1.0;
        }
    }
    barrier;
    // Consume the next processor's band.
    for i = 0 to per - 1 {
        for j = 0 to N - 1 {
            out[lo + i][j] = data[nlo + i][j] * 0.5;
        }
    }
    barrier;
}
`

func main() {
	cfg := sim.DefaultConfig()
	cfg.Nodes = 16

	prog, err := parc.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Trace the unannotated program (WWT flushes caches at barriers and
	//    records every miss).
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	traced, err := sim.Run(prog, traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d epochs, %d labelled regions\n",
		len(traced.Trace.Epochs), len(traced.Trace.Labels))

	// 2. Cachier combines the trace with static analysis and inserts
	//    Performance CICO annotations.
	ann, err := core.Annotate(src, traced.Trace, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cachier inserted %d annotations:\n\n%s\n", ann.Annotations, ann.Source)

	// 3. Measure both versions as Dir1SW directives.
	base, err := sim.Run(parc.MustParse(src), cfg)
	if err != nil {
		log.Fatal(err)
	}
	annotated, err := sim.Run(parc.MustParse(ann.Source), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unannotated: %8d cycles (%d write faults, %d traps)\n",
		base.Cycles, base.Stats.WriteFaults, base.Stats.Traps)
	fmt.Printf("annotated:   %8d cycles (%d write faults, %d traps)\n",
		annotated.Cycles, annotated.Stats.WriteFaults, annotated.Stats.Traps)
	fmt.Printf("normalized execution time: %.3f\n",
		float64(annotated.Cycles)/float64(base.Cycles))
}
