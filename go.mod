module cachier

go 1.22
