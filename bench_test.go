package cachier

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the experiment index):
//
//	BenchmarkFig6/<name>          — Figure 6 bars: normalized execution time
//	                                 per variant for each of the five
//	                                 benchmarks (E1)
//	BenchmarkJacobiCost/...       — Section 2.1 check-out counts (E2)
//	BenchmarkRestructure          — Section 5 check-out counts and speedup (E4)
//	BenchmarkInputSensitivity     — Section 4.5 train-vs-test input delta (E5)
//	BenchmarkTrapCostSweep        — ablation: CICO's value vs Dir1SW trap cost
//	BenchmarkProgrammerVsPerformance — ablation: Programmer CICO run as
//	                                 directives vs Performance CICO (Sec. 4.1)
//	BenchmarkFullMapBaseline      — ablation: the same annotations under a
//	                                 full-map hardware directory
//	BenchmarkPostStore            — extension: KSR-1 post-store check-ins
//
// Custom metrics (reported via b.ReportMetric, suffix explains the unit):
// normalized execution times, measured check-out counts, and percentage
// deltas. Wall-clock ns/op measures the simulator itself.

import (
	"fmt"
	"math"
	"testing"

	"cachier/internal/bench"
	"cachier/internal/cico"
	"cachier/internal/core"
	"cachier/internal/dir1sw"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// BenchmarkFig6 regenerates Figure 6 (experiment E1): each sub-benchmark
// traces, annotates, and measures one program, reporting the normalized
// execution times of the hand-annotated and Cachier-annotated versions.
func BenchmarkFig6(b *testing.B) {
	for _, bm := range bench.All() {
		b.Run(bm.Name, func(b *testing.B) {
			var row *bench.Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.RunBenchmark(bm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Normalized(bench.VariantHand), "hand/none")
			b.ReportMetric(row.Normalized(bench.VariantCachier), "cachier/none")
			b.ReportMetric(row.Normalized(bench.VariantCachierPrefetch), "cachier+pf/none")
			b.ReportMetric(100*row.SharingLoads, "%shared-loads")
		})
	}
}

// BenchmarkJacobiCost regenerates the Section 2.1 cost-model numbers (E2):
// measured check-outs must equal the closed forms exactly.
func BenchmarkJacobiCost(b *testing.B) {
	p := bench.JacobiParams
	cases := []struct {
		name    string
		src     string
		formula int64
	}{
		{"WholeFit", bench.JacobiWholeFit(p),
			cico.JacobiWholeMatrixCheckouts(int64(p.N), int64(p.P), int64(p.Steps), 4)},
		{"RowFit", bench.JacobiRowFit(p),
			cico.JacobiColumnCheckouts(int64(p.N), int64(p.P), int64(p.Steps), 4)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.Nodes = p.P * p.P
			var got uint64
			for i := 0; i < b.N; i++ {
				cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
				_, err := sim.Run(parc.MustParse(c.src), cfg)
				if err != nil {
					b.Fatal(err)
				}
				got = cfg.Recorder.Var("U").CheckOuts()
			}
			if int64(got) != c.formula {
				b.Fatalf("measured %d check-outs, formula %d", got, c.formula)
			}
			b.ReportMetric(float64(got), "checkouts")
			b.ReportMetric(float64(c.formula), "formula")
		})
	}
}

// BenchmarkRestructure regenerates the Section 5 comparison (E4): the
// annotated original's N^3 racy check-outs of C versus the restructured
// program's N^2*P/2.
func BenchmarkRestructure(b *testing.B) {
	bm := bench.MatMul()
	cfg := sim.DefaultConfig()
	cfg.Nodes = bm.Nodes
	var orig, restr *sim.Result
	for i := 0; i < b.N; i++ {
		row, err := bench.RunBenchmark(bm)
		if err != nil {
			b.Fatal(err)
		}
		origCfg := cfg
		origCfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		res, err := sim.Run(parc.MustParse(row.AnnotatedSource), origCfg)
		if err != nil {
			b.Fatal(err)
		}
		orig = res
		restrCfg := cfg
		restrCfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		restr, err = sim.Run(parc.MustParse(bench.RestructuredMatMul(bm.Train)), restrCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(orig.Snapshot.VarByName("C").CheckOuts()), "orig-C-checkouts")
	b.ReportMetric(float64(restr.Snapshot.VarByName("C").CheckOuts()), "restr-C-checkouts")
	b.ReportMetric(float64(restr.Cycles)/float64(orig.Cycles), "restr/orig-cycles")
}

// BenchmarkInputSensitivity regenerates the Section 4.5 measurement (E5):
// the cost of annotating with a training input and measuring on a test
// input, for the dynamic Barnes benchmark.
func BenchmarkInputSensitivity(b *testing.B) {
	bm := bench.Barnes()
	cfg := sim.DefaultConfig()
	cfg.Nodes = bm.Nodes
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace

	annotateWith := func(train bench.Params) string {
		src := bm.Source(train)
		tr, err := sim.Run(parc.MustParse(src), traceCfg)
		if err != nil {
			b.Fatal(err)
		}
		ann, err := core.Annotate(src, tr.Trace, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		return ann.Source
	}
	var diff float64
	for i := 0; i < b.N; i++ {
		crossSrc := annotateWith(bm.Train)
		sameSrc := annotateWith(bm.Test)
		// Both measured on the test input.
		cross, err := sim.Run(parc.MustParse(replaceSeed(crossSrc, bm.Train.Seed, bm.Test.Seed)), cfg)
		if err != nil {
			b.Fatal(err)
		}
		same, err := sim.Run(parc.MustParse(sameSrc), cfg)
		if err != nil {
			b.Fatal(err)
		}
		diff = 100 * math.Abs(float64(cross.Cycles)-float64(same.Cycles)) / float64(same.Cycles)
	}
	b.ReportMetric(diff, "%cross-input-delta")
}

func replaceSeed(src string, from, to int64) string {
	old := fmt.Sprintf("const SEED = %d;", from)
	nw := fmt.Sprintf("const SEED = %d;", to)
	out := ""
	for len(src) > 0 {
		i := 0
		for ; i+len(old) <= len(src); i++ {
			if src[i:i+len(old)] == old {
				return out + src[:i] + nw + src[i+len(old):]
			}
		}
		break
	}
	return src
}

// BenchmarkTrapCostSweep is the DESIGN.md ablation: how the value of CICO
// annotations scales with the Dir1SW software-trap cost. The annotations'
// whole purpose is trap avoidance, so the normalized time should fall as
// traps get more expensive.
func BenchmarkTrapCostSweep(b *testing.B) {
	bm := bench.Mp3d()
	for _, scale := range []float64{0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("trap-x%g", scale), func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.Nodes = bm.Nodes
			cfg.Costs.Trap = uint64(float64(dir1sw.DefaultCosts().Trap) * scale)
			traceCfg := cfg
			traceCfg.Mode = sim.ModeTrace
			var ratio float64
			for i := 0; i < b.N; i++ {
				src := bm.Source(bm.Train)
				tr, err := sim.Run(parc.MustParse(src), traceCfg)
				if err != nil {
					b.Fatal(err)
				}
				ann, err := core.Annotate(src, tr.Trace, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				base, err := sim.Run(parc.MustParse(src), cfg)
				if err != nil {
					b.Fatal(err)
				}
				annotated, err := sim.Run(parc.MustParse(ann.Source), cfg)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(annotated.Cycles) / float64(base.Cycles)
			}
			b.ReportMetric(ratio, "cachier/none")
		})
	}
}

// BenchmarkProgrammerVsPerformance is the Section 4.1 ablation: running
// Programmer CICO annotations as directives pays for the explicit
// check_out_s that Dir1SW already performs implicitly; Performance CICO
// omits them.
func BenchmarkProgrammerVsPerformance(b *testing.B) {
	bm := bench.MatMul()
	cfg := sim.DefaultConfig()
	cfg.Nodes = bm.Nodes
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	var prg, perf uint64
	for i := 0; i < b.N; i++ {
		src := bm.Source(bm.Train)
		tr, err := sim.Run(parc.MustParse(src), traceCfg)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Style = core.StyleProgrammer
		annP, err := core.Annotate(src, tr.Trace, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.Style = core.StylePerformance
		annF, err := core.Annotate(src, tr.Trace, opts)
		if err != nil {
			b.Fatal(err)
		}
		resP, err := sim.Run(parc.MustParse(annP.Source), cfg)
		if err != nil {
			b.Fatal(err)
		}
		resF, err := sim.Run(parc.MustParse(annF.Source), cfg)
		if err != nil {
			b.Fatal(err)
		}
		prg, perf = resP.Cycles, resF.Cycles
	}
	b.ReportMetric(float64(prg), "programmer-cycles")
	b.ReportMetric(float64(perf), "performance-cycles")
	b.ReportMetric(float64(prg)/float64(perf), "programmer/performance")
}

// BenchmarkPostStore is an extension ablation: the paper's introduction
// notes the KSR-1's post-store instruction is "similar, though not
// identical, to a check-in". Running the Cachier-annotated Ocean with
// post-store semantics pushes checked-in boundary rows straight back to
// their readers. The result illustrates the "not identical": read misses
// drop, but on Ocean's migratory write pattern total cycles get WORSE —
// every pushed copy is re-invalidated (with a trap broadcast) when the
// owner rewrites the row next sweep. Post-store pays off only for
// write-once/read-many handoffs (see the dir1sw unit tests), which is why
// Dir1SW's check-in returns blocks to Idle instead.
func BenchmarkPostStore(b *testing.B) {
	bm := bench.Ocean()
	traceCfg := sim.DefaultConfig()
	traceCfg.Nodes = bm.Nodes
	traceCfg.Mode = sim.ModeTrace
	src := bm.Source(bm.Train)
	tr, err := sim.Run(parc.MustParse(src), traceCfg)
	if err != nil {
		b.Fatal(err)
	}
	ann, err := core.Annotate(src, tr.Trace, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var plain, ksr *sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Nodes = bm.Nodes
		plain, err = sim.Run(parc.MustParse(ann.Source), cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.PostStore = true
		ksr, err = sim.Run(parc.MustParse(ann.Source), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plain.Stats.ReadMisses), "dir1sw-read-misses")
	b.ReportMetric(float64(ksr.Stats.ReadMisses), "poststore-read-misses")
	b.ReportMetric(float64(ksr.Cycles)/float64(plain.Cycles), "poststore/dir1sw-cycles")
}

// BenchmarkSimulator measures the substrate itself: simulated cycles per
// wall-clock second on the matrix multiply.
func BenchmarkSimulator(b *testing.B) {
	bm := bench.MatMul()
	cfg := sim.DefaultConfig()
	cfg.Nodes = bm.Nodes
	prog := parc.MustParse(bm.Source(bm.Train))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "simulated-cycles")
}

// BenchmarkAnnotate measures Cachier's own speed (trace processing through
// unparse) on the largest benchmark trace.
func BenchmarkAnnotate(b *testing.B) {
	bm := bench.Barnes()
	traceCfg := sim.DefaultConfig()
	traceCfg.Nodes = bm.Nodes
	traceCfg.Mode = sim.ModeTrace
	src := bm.Source(bm.Train)
	tr, err := sim.Run(parc.MustParse(src), traceCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Annotate(src, tr.Trace, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullMapBaseline is the protocol-sensitivity ablation: under a
// full-map hardware directory (the Dir_N class Dir1SW was designed as a
// cheap alternative to) no transition traps to software and invalidations
// are directed, so the unannotated baseline is much faster and CICO
// annotations have far less left to save. The annotations' value is a
// property of Dir1SW's hardware/software split, exactly as the cooperative
// shared memory work argues.
func BenchmarkFullMapBaseline(b *testing.B) {
	bm := bench.MatMul()
	traceCfg := sim.DefaultConfig()
	traceCfg.Nodes = bm.Nodes
	traceCfg.Mode = sim.ModeTrace
	src := bm.Source(bm.Train)
	tr, err := sim.Run(parc.MustParse(src), traceCfg)
	if err != nil {
		b.Fatal(err)
	}
	ann, err := core.Annotate(src, tr.Trace, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ratio := func(fullMap bool) float64 {
		cfg := sim.DefaultConfig()
		cfg.Nodes = bm.Nodes
		cfg.FullMap = fullMap
		base, err := sim.Run(parc.MustParse(src), cfg)
		if err != nil {
			b.Fatal(err)
		}
		annotated, err := sim.Run(parc.MustParse(ann.Source), cfg)
		if err != nil {
			b.Fatal(err)
		}
		return float64(annotated.Cycles) / float64(base.Cycles)
	}
	var dir1swRatio, fullMapRatio float64
	for i := 0; i < b.N; i++ {
		dir1swRatio = ratio(false)
		fullMapRatio = ratio(true)
	}
	b.ReportMetric(dir1swRatio, "cachier/none-dir1sw")
	b.ReportMetric(fullMapRatio, "cachier/none-fullmap")
}
